"""Columnar doc values enabling sequential scan (§5.1).

Elasticsearch stores per-field column values ("doc values") for sorting and
aggregation; ESDB reuses them to implement the sequential-scan access path:
given a posting list from a composite-index search, scan the doc values of a
low-cardinality column (e.g. ``status``) to filter the posting list without
touching another index.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.storage.postings import PostingList


class DocValues:
    """Column store: row id → value for one field.

    Rows are appended with monotonically increasing ids within a segment, so
    a plain list indexed by (row_id - base) is both compact and O(1).
    """

    def __init__(self, base_row_id: int = 0) -> None:
        self._base = base_row_id
        self._values: list[Any] = []

    def __len__(self) -> int:
        return len(self._values)

    def append(self, row_id: int, value: Any) -> None:
        """Store *value* for *row_id*; gaps are padded with None (sparse
        columns — a row may lack any given sub-attribute)."""
        index = row_id - self._base
        while len(self._values) < index:
            self._values.append(None)
        if index == len(self._values):
            self._values.append(value)
        else:
            self._values[index] = value

    def get(self, row_id: int, default: Any = None) -> Any:
        index = row_id - self._base
        if 0 <= index < len(self._values):
            value = self._values[index]
            return default if value is None else value
        return default

    def scan(self, rows: PostingList, predicate: Callable[[Any], bool]) -> PostingList:
        """Filter *rows* by *predicate* over this column — the sequential-scan
        operator of the ESDB query plan (Figure 8, posting list B)."""
        out = [row for row in rows if predicate(self.get(row))]
        return PostingList(out, presorted=True)

    def full_scan(self, predicate: Callable[[Any], bool]) -> PostingList:
        """Scan the entire column (table-scan fallback; deliberately the most
        expensive path so plan comparisons stay meaningful)."""
        out = [
            self._base + i
            for i, value in enumerate(self._values)
            if predicate(value)
        ]
        return PostingList(out, presorted=True)

    def multi_full_scan(
        self, predicates: "list[Callable[[Any], bool]]"
    ) -> "list[PostingList]":
        """Evaluate many predicates in one pass over the column — the
        shared-scan operator (SharedDB): N same-column filters cost one
        column traversal instead of N."""
        outs: list[list[int]] = [[] for _ in predicates]
        base = self._base
        for i, value in enumerate(self._values):
            row = base + i
            for j, predicate in enumerate(predicates):
                if predicate(value):
                    outs[j].append(row)
        return [PostingList(out, presorted=True) for out in outs]

    def distinct_count(self) -> int:
        """Cardinality estimate used to decide scan-list membership."""
        return len({v for v in self._values if v is not None})
