"""Sorted numeric index — the role Bkd-trees play in Elasticsearch.

Lucene indexes numeric and multi-dimensional data with Bkd-trees; for the
one-dimensional case the structure behaves as a disk-friendly sorted index
supporting point and range lookups. This module implements exactly that: a
block-structured sorted array of ``(value, row_id)`` pairs with a block
directory, giving O(log B + hits) range queries while keeping the code honest
about the block I/O pattern the real structure optimizes.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable

from repro.errors import StorageError
from repro.storage.postings import PostingList

DEFAULT_BLOCK_SIZE = 256


class SortedIndex:
    """Block-structured sorted index over one numeric column.

    Values are buffered unsorted during segment construction and sealed into
    sorted blocks on :meth:`seal` (mirroring how Lucene writes points at
    flush time). Lookups before sealing seal implicitly.
    """

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        if block_size < 2:
            raise StorageError("block_size must be >= 2")
        self._block_size = block_size
        self._pending: list[tuple[float, int]] = []
        self._values: list[float] = []
        self._rows: list[int] = []
        self._block_mins: list[float] = []
        self._sealed = False

    def __len__(self) -> int:
        return len(self._pending) + len(self._values)

    def add(self, value: float, row_id: int) -> None:
        """Buffer one ``(value, row_id)`` pair."""
        if value is None:
            raise StorageError("cannot index None; use doc values for sparse columns")
        self._pending.append((float(value), row_id))
        self._sealed = False

    def add_all(self, pairs: Iterable[tuple[float, int]]) -> None:
        for value, row_id in pairs:
            self.add(value, row_id)

    def seal(self) -> None:
        """Sort the buffered pairs into the block structure."""
        if self._sealed:
            return
        merged = sorted(
            list(zip(self._values, self._rows)) + self._pending,
            key=lambda p: (p[0], p[1]),
        )
        self._values = [v for v, _ in merged]
        self._rows = [r for _, r in merged]
        self._pending = []
        self._block_mins = [
            self._values[i] for i in range(0, len(self._values), self._block_size)
        ]
        self._sealed = True

    # -- queries ---------------------------------------------------------------
    def range(self, low: float | None, high: float | None, *,
              include_low: bool = True, include_high: bool = True) -> PostingList:
        """Return rows with ``low <= value <= high`` (bounds optional)."""
        self.seal()
        if not self._values:
            return PostingList.empty()
        lo_idx = 0
        if low is not None:
            lo_idx = (bisect_left if include_low else bisect_right)(self._values, float(low))
        hi_idx = len(self._values)
        if high is not None:
            hi_idx = (bisect_right if include_high else bisect_left)(self._values, float(high))
        if lo_idx >= hi_idx:
            return PostingList.empty()
        return PostingList(self._rows[lo_idx:hi_idx])

    def point(self, value: float) -> PostingList:
        """Return rows whose value equals *value* exactly."""
        return self.range(value, value)

    def min_value(self) -> float | None:
        self.seal()
        return self._values[0] if self._values else None

    def max_value(self) -> float | None:
        self.seal()
        return self._values[-1] if self._values else None

    def blocks_touched(self, low: float | None, high: float | None) -> int:
        """Return how many blocks a range query reads — the I/O metric the
        block structure exists to minimize (used by tests and cost model)."""
        self.seal()
        if not self._values:
            return 0
        lo_idx = 0 if low is None else bisect_left(self._values, float(low))
        hi_idx = len(self._values) if high is None else bisect_right(self._values, float(high))
        if lo_idx >= hi_idx:
            return 0
        first_block = lo_idx // self._block_size
        last_block = (hi_idx - 1) // self._block_size
        return last_block - first_block + 1
