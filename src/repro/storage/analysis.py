"""Text analysis: tokenizer and analyzer for full-text fields.

A small standard analyzer in the Lucene mould: lowercase, split on
non-alphanumerics, drop a short English stopword list, keep CJK characters
as single-character tokens (Taobao auction titles mix scripts).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

_TOKEN_RE = re.compile(r"[0-9a-z]+|[一-鿿]", re.UNICODE)

DEFAULT_STOPWORDS = frozenset(
    "a an and are as at be by for from has in is it of on or that the to was with".split()
)


def tokenize(text: str) -> list[str]:
    """Lowercase and split *text* into index tokens."""
    return _TOKEN_RE.findall(text.lower())


@dataclass(frozen=True)
class StandardAnalyzer:
    """Tokenizer + stopword filter.

    Attributes:
        stopwords: tokens to drop (empty set disables filtering).
        min_token_length: drop shorter tokens (CJK single chars exempt).
    """

    stopwords: frozenset = DEFAULT_STOPWORDS
    min_token_length: int = 1

    def analyze(self, text: str) -> list[str]:
        """Return the index terms of *text* in order (duplicates kept so
        positional/frequency features can be layered later)."""
        return list(self.iter_terms(text))

    def iter_terms(self, text: str) -> Iterator[str]:
        for token in tokenize(text):
            if token in self.stopwords:
                continue
            if len(token) < self.min_token_length and not _is_cjk(token):
                continue
            yield token


def _is_cjk(token: str) -> bool:
    return len(token) == 1 and "一" <= token <= "鿿"
