"""Cluster substrate: nodes, shards, replicas, allocation, master election.

A shared-nothing topology matching the paper's testbed: shards and their
replicas are spread over worker nodes with the invariant that a replica never
lands on its primary's node (the paper observes neighbouring nodes carrying
a hotspot's primary and replica at equal load — Figure 13).
"""

from repro.cluster.cluster import Cluster, ClusterTopology
from repro.cluster.node import Node, NodeRole
from repro.cluster.shard import Replica, Shard

__all__ = ["Cluster", "ClusterTopology", "Node", "NodeRole", "Shard", "Replica"]
