"""Shards and replicas.

A shard is the unit of routing and storage; each shard has exactly one
replica (the paper's configuration). The shard object here is pure topology
metadata — the actual per-shard storage engine lives in
:mod:`repro.storage.engine` and is attached by the :class:`~repro.esdb.ESDB`
facade, while the performance simulator only tracks counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass
class Shard:
    """A primary shard.

    Attributes:
        shard_id: index in ``[0, num_shards)``; routing targets this id.
        node_id: the worker node hosting the primary copy.
        doc_count: number of documents written (shard-size metric, Fig 13d).
    """

    shard_id: int
    node_id: int
    doc_count: int = 0
    bytes_size: int = 0

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise ConfigurationError("shard_id must be non-negative")

    def record_write(self, size_bytes: int = 1) -> None:
        self.doc_count += 1
        self.bytes_size += size_bytes


@dataclass
class Replica:
    """The replica of a shard, hosted on a different node than the primary."""

    shard_id: int
    node_id: int

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise ConfigurationError("shard_id must be non-negative")
