"""Cluster topology: shard allocation and master election.

Allocation mirrors the paper's setup: shards and replicas are spread across
worker nodes round-robin from a seeded shuffle ("randomly allocated"), with
the invariant that a shard's replica is never placed on the same node as its
primary. The default topology matches the evaluation cluster: 8 worker
nodes, 512 shards, one replica per shard.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cluster.node import Node
from repro.cluster.shard import Replica, Shard
from repro.errors import ClusterError, ConfigurationError, ShardAllocationError


@dataclass(frozen=True)
class ClusterTopology:
    """Static description of a cluster layout.

    Attributes:
        num_nodes: worker node count (paper: 8).
        num_shards: shard count (paper: 512).
        replicas_per_shard: replica copies per shard (paper: 1).
        node_capacity: per-node write service rate in ops/sec (simulator).
    """

    num_nodes: int = 8
    num_shards: int = 512
    replicas_per_shard: int = 1
    node_capacity: float = 20_000.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigurationError("num_nodes must be >= 1")
        if self.num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        if self.replicas_per_shard < 0:
            raise ConfigurationError("replicas_per_shard must be >= 0")
        if self.replicas_per_shard >= self.num_nodes and self.replicas_per_shard > 0:
            raise ConfigurationError(
                "need more nodes than replicas to avoid co-locating copies"
            )


class Cluster:
    """A shared-nothing ESDB cluster: nodes, shards, replicas, master."""

    def __init__(self, topology: ClusterTopology | None = None) -> None:
        self.topology = topology or ClusterTopology()
        self.nodes: list[Node] = [
            Node(node_id=i, capacity=self.topology.node_capacity)
            for i in range(self.topology.num_nodes)
        ]
        self.shards: list[Shard] = []
        self.replicas: dict[int, list[Replica]] = {}
        self._allocate(self.topology.seed)
        self._master_id: int | None = None
        self.elect_master()

    # -- allocation ----------------------------------------------------------
    def _allocate(self, seed: int) -> None:
        """Place primaries round-robin over a seeded node shuffle, then place
        each replica on the next distinct live node."""
        rng = random.Random(seed)
        order = list(range(self.topology.num_nodes))
        rng.shuffle(order)
        for shard_id in range(self.topology.num_shards):
            primary_node = order[shard_id % len(order)]
            shard = Shard(shard_id=shard_id, node_id=primary_node)
            self.shards.append(shard)
            self.nodes[primary_node].shard_ids.add(shard_id)
            copies = []
            for r in range(1, self.topology.replicas_per_shard + 1):
                replica_node = order[(shard_id + r) % len(order)]
                if replica_node == primary_node:
                    raise ShardAllocationError(
                        f"replica of shard {shard_id} would co-locate with primary"
                    )
                copies.append(Replica(shard_id=shard_id, node_id=replica_node))
                self.nodes[replica_node].replica_shard_ids.add(shard_id)
            self.replicas[shard_id] = copies

    # -- lookups ---------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.topology.num_shards

    @property
    def num_nodes(self) -> int:
        return self.topology.num_nodes

    def shard(self, shard_id: int) -> Shard:
        if not 0 <= shard_id < len(self.shards):
            raise ClusterError(f"unknown shard {shard_id}")
        return self.shards[shard_id]

    def node_of_shard(self, shard_id: int) -> Node:
        """Return the node hosting the primary of *shard_id*."""
        return self.nodes[self.shard(shard_id).node_id]

    def replica_nodes_of_shard(self, shard_id: int) -> list[Node]:
        self.shard(shard_id)
        return [self.nodes[r.node_id] for r in self.replicas.get(shard_id, [])]

    def nodes_touched_by_write(self, shard_id: int) -> list[Node]:
        """Primary node plus replica nodes — every node that spends CPU on a
        write to *shard_id* (the doubling the paper's physical replication
        attacks)."""
        return [self.node_of_shard(shard_id)] + self.replica_nodes_of_shard(shard_id)

    def shards_on_node(self, node_id: int) -> set:
        return set(self.nodes[node_id].shard_ids)

    # -- master election ---------------------------------------------------------
    @property
    def master(self) -> Node:
        if self._master_id is None:
            raise ClusterError("no master elected")
        return self.nodes[self._master_id]

    def elect_master(self) -> Node:
        """Elect the lowest-id live node as master (deterministic election)."""
        for node in self.nodes:
            node.demote_master()
        for node in self.nodes:
            if node.alive:
                node.promote_master()
                self._master_id = node.node_id
                return node
        raise ClusterError("no live node available for master election")

    def fail_node(self, node_id: int) -> None:
        """Fail a node; re-elect the master if it was the master."""
        node = self.nodes[node_id]
        node.fail()
        if self._master_id == node_id:
            self.elect_master()

    def relocate_primaries_of(self, node_id: int) -> dict[int, int]:
        """Promote replicas of a dead node's primaries: each shard whose
        primary lived on *node_id* moves to one of its replica nodes (the
        master's shard-allocation duty, §3.2). Returns
        ``{shard_id: new_node_id}``; shards without a live replica are left
        in place (data loss would need operator action)."""
        moved: dict[int, int] = {}
        dead = self.nodes[node_id]
        if dead.alive:
            raise ClusterError(f"node {node_id} is alive; fail it first")
        for shard_id in sorted(dead.shard_ids):
            candidates = [
                replica
                for replica in self.replicas.get(shard_id, [])
                if self.nodes[replica.node_id].alive
            ]
            if not candidates:
                continue
            target = candidates[0]
            shard = self.shards[shard_id]
            new_node = target.node_id
            shard.node_id = new_node
            self.nodes[new_node].shard_ids.add(shard_id)
            self.nodes[new_node].replica_shard_ids.discard(shard_id)
            # The dead node keeps the shard's replica slot (stale copy)
            # until an operator reseeds it.
            target.node_id = node_id
            dead.replica_shard_ids.add(shard_id)
            moved[shard_id] = new_node
        for shard_id in moved:
            dead.shard_ids.discard(shard_id)
        return moved

    def restart_node(self, node_id: int) -> None:
        self.nodes[node_id].restart()

    # -- introspection --------------------------------------------------------
    def shard_counts_per_node(self) -> dict[int, int]:
        """Return {node_id: primary shard count} (allocation balance check)."""
        return {n.node_id: len(n.shard_ids) for n in self.nodes}

    def describe(self) -> str:
        lines = [
            f"cluster: {self.num_nodes} nodes, {self.num_shards} shards, "
            f"{self.topology.replicas_per_shard} replica(s)/shard, master={self.master.name}"
        ]
        for node in self.nodes:
            lines.append(
                f"  {node.name}: {len(node.shard_ids)} primaries, "
                f"{len(node.replica_shard_ids)} replicas, "
                f"capacity={node.capacity:.0f} ops/s"
            )
        return "\n".join(lines)
