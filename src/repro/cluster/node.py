"""Cluster nodes.

Every ESDB node plays the coordinator role on the control layer and the
worker role on the execution layer; one node per cluster is additionally
elected master (§3). Nodes carry a service capacity (writes/sec) used by the
performance simulator and expose simple health toggles for fault-injection
tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


class NodeRole(enum.Flag):
    """Roles a node can play simultaneously."""

    WORKER = enum.auto()
    COORDINATOR = enum.auto()
    MASTER = enum.auto()


@dataclass
class Node:
    """One physical/virtual machine in the cluster.

    Attributes:
        node_id: stable integer identifier.
        capacity: write service rate in operations/second (simulator input).
        roles: the roles this node currently plays.
    """

    node_id: int
    capacity: float = 20_000.0
    roles: NodeRole = NodeRole.WORKER | NodeRole.COORDINATOR
    alive: bool = True
    shard_ids: set = field(default_factory=set)
    replica_shard_ids: set = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError("node capacity must be positive")

    @property
    def name(self) -> str:
        return f"node-{self.node_id}"

    @property
    def is_master(self) -> bool:
        return bool(self.roles & NodeRole.MASTER)

    def promote_master(self) -> None:
        self.roles |= NodeRole.MASTER

    def demote_master(self) -> None:
        self.roles &= ~NodeRole.MASTER

    def fail(self) -> None:
        """Mark the node dead (used by allocation and election tests)."""
        self.alive = False

    def restart(self) -> None:
        self.alive = True

    def hosted_shards(self) -> set:
        """All shard ids hosted here, primaries and replicas alike."""
        return self.shard_ids | self.replica_shard_ids
