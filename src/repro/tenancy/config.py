"""Configuration of multi-tenant resource governance (``EsdbConfig.tenancy``).

One frozen dataclass tunes the four governance mechanisms of
:mod:`repro.tenancy`: per-tenant token-bucket rate limits (writes/s and
queries/s with burst allowance), QoS priority classes with weighted access
to the shared admission queue, per-tenant byte/operation quotas over
tumbling logical-clock windows, and the alert-driven auto-demotion policy.

``TenancyConfig()`` is **disabled** by default — the facade then builds no
governor and every path is byte-identical to an ungoverned instance.
``TenancyConfig.strict()`` is the tight-budget preset the noisy-neighbor
chaos scenario and benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

#: QoS priority classes, highest priority first. Admission under
#: saturation is granted in this order: a class may only occupy its
#: configured fraction of the shared admission queue, so low-priority
#: backlog is shed first while interactive traffic still books slots.
QOS_CLASSES = ("interactive", "standard", "batch")

#: Pseudo-tenant that owns cross-tenant (fan-out-all) queries.
CLUSTER_TENANT = "*"


@dataclass(frozen=True)
class TenancyConfig:
    """Tuning knobs for per-tenant admission control.

    Attributes:
        enabled: build a :class:`~repro.tenancy.TenantGovernor` for the
            instance. Off (default) means no governor object exists and the
            hot paths pay nothing — not even an ``is not None`` branch is
            reached differently, keeping default behavior byte-identical.
        write_rate / write_burst: per-tenant token bucket for writes —
            sustained writes/second and the burst allowance (bucket size).
        query_rate / query_burst: same for queries.
        queue_capacity: slots in the shared bounded admission queue. A
            request that exceeds its tenant's rate *books* a future-token
            slot here (backpressure) instead of failing immediately;
            overflow is shed with
            :class:`~repro.errors.TenantThrottledError`.
        interactive_queue_share / standard_queue_share / batch_queue_share:
            fraction of ``queue_capacity`` each QoS class may fill. With
            the defaults, batch backlog sheds once the queue is 25% full,
            standard at 60%, while interactive may use all of it — the
            weighted-admission ordering under saturation.
        default_qos: class assigned to tenants without an explicit entry.
        tenant_qos: ``((tenant, qos), ...)`` static class assignments.
        indexed_bytes_quota: bytes a tenant may index per quota window
            (None = unlimited).
        result_bytes_quota: result-set bytes a tenant's queries may return
            per window (None = unlimited).
        scanned_docs_quota: documents a tenant's queries may match per
            window (None = unlimited).
        quota_window_seconds: tumbling quota window length on the
            instance's *logical* clock; usage resets exactly at window
            boundaries, deterministically.
        auto_demote: let the governance policy demote tenants to ``batch``
            when the skew window raises a hot-tenant alert at or above
            ``demote_share``.
        demote_share: window write share at which a hot tenant is demoted.
        demote_seconds: logical seconds a demotion lasts before the tenant
            is restored to its configured class.
    """

    enabled: bool = False
    write_rate: float = 500.0
    write_burst: float = 100.0
    query_rate: float = 200.0
    query_burst: float = 40.0
    queue_capacity: int = 64
    interactive_queue_share: float = 1.0
    standard_queue_share: float = 0.6
    batch_queue_share: float = 0.25
    default_qos: str = "standard"
    tenant_qos: tuple = ()
    indexed_bytes_quota: int | None = None
    result_bytes_quota: int | None = None
    scanned_docs_quota: int | None = None
    quota_window_seconds: float = 60.0
    auto_demote: bool = True
    demote_share: float = 0.35
    demote_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.write_rate <= 0 or self.query_rate <= 0:
            raise ConfigurationError("write_rate/query_rate must be positive")
        if self.write_burst < 1 or self.query_burst < 1:
            raise ConfigurationError("write_burst/query_burst must be >= 1")
        if self.queue_capacity < 1:
            raise ConfigurationError("queue_capacity must be >= 1")
        for name in (
            "interactive_queue_share",
            "standard_queue_share",
            "batch_queue_share",
        ):
            share = getattr(self, name)
            if not 0.0 < share <= 1.0:
                raise ConfigurationError(f"{name} must be in (0, 1]")
        if not (
            self.interactive_queue_share
            >= self.standard_queue_share
            >= self.batch_queue_share
        ):
            raise ConfigurationError(
                "queue shares must not increase with lower priority"
            )
        if self.default_qos not in QOS_CLASSES:
            raise ConfigurationError(
                f"default_qos must be one of {QOS_CLASSES}, got {self.default_qos!r}"
            )
        for tenant, qos in self.tenant_qos:
            if qos not in QOS_CLASSES:
                raise ConfigurationError(
                    f"tenant {tenant!r} assigned unknown QoS class {qos!r}"
                )
        for name in ("indexed_bytes_quota", "result_bytes_quota", "scanned_docs_quota"):
            quota = getattr(self, name)
            if quota is not None and quota < 1:
                raise ConfigurationError(f"{name} must be >= 1 or None")
        if self.quota_window_seconds <= 0:
            raise ConfigurationError("quota_window_seconds must be positive")
        if not 0.0 < self.demote_share <= 1.0:
            raise ConfigurationError("demote_share must be in (0, 1]")
        if self.demote_seconds <= 0:
            raise ConfigurationError("demote_seconds must be positive")

    def queue_share(self, qos: str) -> float:
        """The fraction of the admission queue *qos* may occupy."""
        return {
            "interactive": self.interactive_queue_share,
            "standard": self.standard_queue_share,
            "batch": self.batch_queue_share,
        }[qos]

    @staticmethod
    def strict(**overrides) -> "TenancyConfig":
        """Tight budgets for adversarial scenarios: low rates, a small
        queue, and byte/scan quotas enabled — floods throttle quickly."""
        params = dict(
            enabled=True,
            write_rate=40.0,
            write_burst=16.0,
            query_rate=20.0,
            query_burst=8.0,
            queue_capacity=16,
            indexed_bytes_quota=256 * 1024,
            result_bytes_quota=256 * 1024,
            scanned_docs_quota=20_000,
            quota_window_seconds=10.0,
        )
        params.update(overrides)
        return TenancyConfig(**params)

    def with_qos(self, tenant: object, qos: str) -> "TenancyConfig":
        """A copy with one extra static QoS assignment."""
        return replace(self, tenant_qos=self.tenant_qos + ((tenant, qos),))
