"""Multi-tenant resource governance: admission control, QoS, quotas.

ESDB's premise is surviving extremely skewed multi-tenant traffic, but
skew-aware *routing* only spreads load — it does not stop one abusive
tenant from ruining tail latency for everyone. This package adds the
protective layer (ROADMAP item 3, after the FoundationDB Record Layer's
multi-tenant resource governance): per-tenant token-bucket rate limits,
QoS priority classes with a weighted shared admission queue, tumbling
byte/operation quotas, and backpressure with structured shed-load errors.
Everything runs on the logical clock, so governed runs stay deterministic.

Enable it per instance with ``EsdbConfig(tenancy=TenancyConfig(enabled=True,
...))``; the default config is off and byte-identical to no governance.
"""

from repro.tenancy.bucket import QuotaLedger, TokenBucket
from repro.tenancy.config import CLUSTER_TENANT, QOS_CLASSES, TenancyConfig
from repro.tenancy.governor import TenantGovernor, cat_tenant_governance, doc_bytes
from repro.tenancy.policy import GovernancePolicy

__all__ = [
    "CLUSTER_TENANT",
    "QOS_CLASSES",
    "GovernancePolicy",
    "QuotaLedger",
    "TenancyConfig",
    "TenantGovernor",
    "TokenBucket",
    "cat_tenant_governance",
    "doc_bytes",
]
