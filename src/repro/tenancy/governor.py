"""The per-instance tenant governor: admission control on every hot path.

The ESDB facade owns one :class:`TenantGovernor` (when
``TenancyConfig.enabled``) and consults it at the top of ``write`` and of
the query pipeline. An operation meets four gates, in order:

1. **Quotas** — byte/operation budgets over tumbling logical-clock windows
   (indexed bytes on the write path; result-set bytes and scanned
   documents on the query path). An exhausted quota throttles immediately
   with ``budget="quota:<kind>"`` and ``retry_after`` = time to the window
   boundary.
2. **Rate** — the tenant's token bucket (writes/s or queries/s with burst
   allowance). Tokens available ⇒ admitted immediately.
3. **Backpressure** — a rate-exhausted request may *book* a future token
   by taking a slot in the shared bounded admission queue; the booking is
   released automatically once the logical clock passes the instant the
   token accrues. Bounded queue, deterministic drain.
4. **Shed** — a request whose QoS class has already filled its share of
   the queue is rejected with a structured
   :class:`~repro.errors.TenantThrottledError`. Because class shares
   shrink with priority (batch < standard < interactive), low-priority
   backlog sheds first and interactive tenants are still admitted when
   the cluster saturates.

Everything runs on the injected logical clock — no wall time — so a
governed chaos run keeps the same-seed ⇒ same-fingerprint guarantee.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, Mapping

from repro.errors import TenantThrottledError
from repro.tenancy.bucket import QuotaLedger, TokenBucket
from repro.tenancy.config import CLUSTER_TENANT, QOS_CLASSES, TenancyConfig


def doc_bytes(source: Mapping[str, Any]) -> int:
    """Deterministic size estimate of one document / result row: the sum
    of the stringified key and value lengths (the same cheap accounting
    the cache layer's byte budgets use)."""
    return sum(len(str(key)) + len(str(value)) for key, value in source.items())


class _TenantState:
    """Buckets, ledger, class and counters for one observed tenant."""

    __slots__ = (
        "qos",
        "write_bucket",
        "query_bucket",
        "ledger",
        "demoted_until",
        "admitted",
        "queued",
        "shed",
        "cpu_seconds",
    )

    def __init__(self, config: TenancyConfig, qos: str) -> None:
        self.qos = qos
        self.write_bucket = TokenBucket(config.write_rate, config.write_burst)
        self.query_bucket = TokenBucket(config.query_rate, config.query_burst)
        self.ledger = QuotaLedger(config.quota_window_seconds)
        self.demoted_until: float | None = None
        self.admitted = 0
        self.queued = 0
        self.shed = 0
        self.cpu_seconds = 0.0


class TenantGovernor:
    """Admission control, QoS, quotas and backpressure for one instance.

    The *policy* hook (default :class:`~repro.tenancy.policy.
    GovernancePolicy`) consumes the observer's skew alerts via
    :meth:`apply_alerts` and may demote abusive tenants; a custom policy
    object only needs an ``on_alerts(governor, alerts, now)`` method.
    """

    def __init__(self, config: TenancyConfig, metrics=None, policy=None) -> None:
        from repro.tenancy.policy import GovernancePolicy

        self.config = config
        self.policy = policy if policy is not None else GovernancePolicy(config)
        self._metrics = metrics
        self._tenants: dict[object, _TenantState] = {}
        self._static_qos = dict(config.tenant_qos)
        #: Booked admission-queue slots: release times, a min-heap.
        self._queue: list[float] = []
        self.demotions: list[tuple[float, object, str]] = []
        # Labelled counter handles, resolved once: admission runs on every
        # write and query, so the registry lookup must not be paid per op.
        self._admit_counters: dict[tuple, object] = {}
        self._queued_counters: dict[str, object] = {}
        self._shed_counters: dict[tuple, object] = {}
        self._depth_gauge = metrics.gauge("tenancy_queue_depth") if metrics else None
        if metrics is not None:
            metrics.set_help(
                "tenancy_admitted_total",
                "Operations admitted by tenant governance, by op and qos",
            )
            metrics.set_help(
                "tenancy_queued_total",
                "Admitted operations that booked a backpressure queue slot",
            )
            metrics.set_help(
                "tenancy_shed_total",
                "Operations rejected by tenant governance, by op and budget",
            )
            metrics.set_help(
                "tenancy_queue_depth", "Booked admission-queue slots right now"
            )

    # -- tenant state --------------------------------------------------------
    def _state(self, tenant: object) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            qos = self._static_qos.get(tenant, self.config.default_qos)
            state = _TenantState(self.config, qos)
            self._tenants[tenant] = state
        return state

    def qos_of(self, tenant: object, now: float) -> str:
        """The tenant's effective QoS class at *now* (demotions expire
        here, lazily, so no background sweep is needed). Read-only: an
        unseen tenant's class is reported without creating its state."""
        state = self._tenants.get(tenant)
        if state is None:
            return self._static_qos.get(tenant, self.config.default_qos)
        if state.demoted_until is not None and now >= state.demoted_until:
            state.demoted_until = None
            state.qos = self._static_qos.get(tenant, self.config.default_qos)
        return state.qos

    def set_qos(self, tenant: object, qos: str) -> None:
        """Pin a tenant's class at runtime (clears any active demotion)."""
        if qos not in QOS_CLASSES:
            raise ValueError(f"unknown QoS class {qos!r}")
        state = self._state(tenant)
        state.qos = qos
        state.demoted_until = None
        self._static_qos[tenant] = qos

    def demote(self, tenant: object, now: float, reason: str = "") -> None:
        """Drop a tenant to ``batch`` until ``now + demote_seconds``."""
        state = self._state(tenant)
        state.qos = "batch"
        state.demoted_until = now + self.config.demote_seconds
        self.demotions.append((now, tenant, reason))

    def is_demoted(self, tenant: object, now: float) -> bool:
        self.qos_of(tenant, now)  # expire a stale demotion first
        state = self._tenants.get(tenant)
        return state is not None and state.demoted_until is not None

    # -- the admission queue -------------------------------------------------
    def _drain_queue(self, now: float) -> None:
        queue = self._queue
        while queue and queue[0] <= now:
            heapq.heappop(queue)

    def queue_depth(self, now: float) -> int:
        self._drain_queue(now)
        return len(self._queue)

    # -- admission -----------------------------------------------------------
    def admit_write(self, tenant: object, now: float, size_bytes: int = 0) -> float:
        """Admit one write of *size_bytes*; returns the backpressure delay
        in logical seconds (0.0 = immediate). Raises
        :class:`TenantThrottledError` when the write must be shed."""
        state = self._state(tenant)
        qos = self.qos_of(tenant, now)
        if state.ledger.would_exceed(
            "indexed_bytes", size_bytes, self.config.indexed_bytes_quota, now
        ):
            self._shed(state, tenant, "write", "quota:indexed_bytes",
                       state.ledger.reset_in(now), qos)
        delay = self._admit(state, tenant, "write", state.write_bucket,
                            "writes_per_s", now, qos)
        state.ledger.charge("indexed_bytes", size_bytes, now)
        return delay

    def admit_query(self, tenant: object | None, now: float) -> float:
        """Admit one query for *tenant* (None = cross-tenant, accounted to
        the ``*`` pseudo-tenant). Same contract as :meth:`admit_write`."""
        tenant = CLUSTER_TENANT if tenant is None else tenant
        state = self._state(tenant)
        qos = self.qos_of(tenant, now)
        for kind, quota in (
            ("result_bytes", self.config.result_bytes_quota),
            ("scanned_docs", self.config.scanned_docs_quota),
        ):
            if quota is not None and state.ledger.used(kind, now) >= quota:
                self._shed(state, tenant, "query", f"quota:{kind}",
                           state.ledger.reset_in(now), qos)
        return self._admit(state, tenant, "query", state.query_bucket,
                           "queries_per_s", now, qos)

    def charge_query(
        self, tenant: object | None, now: float, result_bytes: int = 0, scanned: int = 0
    ) -> None:
        """Record a finished query's resource usage against its quotas."""
        tenant = CLUSTER_TENANT if tenant is None else tenant
        ledger = self._state(tenant).ledger
        if result_bytes:
            ledger.charge("result_bytes", result_bytes, now)
        if scanned:
            ledger.charge("scanned_docs", scanned, now)

    def charge_cpu(self, tenant: object | None, seconds: float, op: str = "") -> None:
        """Account CPU time a tenant's work consumed, measured where the
        work actually executed (a bulk batch on its shard's worker, a shard
        subquery on the pool) — the per-tenant *CPU* accounting ROADMAP
        item 3 deferred until the execution layer existed. Accounting only:
        it never sheds load, so admission decisions (and with them the
        chaos fingerprints) are unchanged."""
        tenant = CLUSTER_TENANT if tenant is None else tenant
        self._state(tenant).cpu_seconds += seconds
        if self._metrics is not None:
            # Labeled by operation only — tenant cardinality stays out of
            # the registry; per-tenant totals live on the states and
            # surface through cat_tenant_governance / cpu_seconds().
            self._metrics.counter("tenancy_cpu_seconds_total", op=op or "other").inc(
                seconds
            )

    def cpu_seconds(self, tenant: object | None = None) -> float:
        """CPU seconds charged to *tenant* (every tenant when None)."""
        if tenant is not None:
            state = self._tenants.get(tenant)
            return state.cpu_seconds if state is not None else 0.0
        return sum(state.cpu_seconds for state in self._tenants.values())

    def _admit(
        self,
        state: _TenantState,
        tenant: object,
        op: str,
        bucket: TokenBucket,
        rate_budget: str,
        now: float,
        qos: str,
    ) -> float:
        self._drain_queue(now)
        if bucket.acquire(now) is not None and bucket.tokens >= 0:
            self._admitted(state, op, qos, queued=False)
            return 0.0
        # Bucket empty: book a future token through the shared queue if the
        # class's share still has room, else shed.
        allowed = max(1, int(self.config.queue_capacity * self.config.queue_share(qos)))
        if len(self._queue) >= allowed:
            retry_after = (
                self._queue[0] - now if self._queue else bucket.wait_time(now)
            )
            self._shed(state, tenant, op, "queue", max(retry_after, 0.0), qos,
                       rate_budget=rate_budget)
        delay = bucket.wait_time(now)
        if bucket.acquire(now, max_debt=float(allowed)) is None:
            self._shed(state, tenant, op, rate_budget, delay, qos)
        heapq.heappush(self._queue, now + delay)
        self._admitted(state, op, qos, queued=True)
        return delay

    def _admitted(self, state: _TenantState, op: str, qos: str, queued: bool) -> None:
        state.admitted += 1
        if queued:
            state.queued += 1
        if self._metrics is not None:
            counter = self._admit_counters.get((op, qos))
            if counter is None:
                counter = self._metrics.counter(
                    "tenancy_admitted_total", op=op, qos=qos
                )
                self._admit_counters[(op, qos)] = counter
            counter.inc()
            if queued:
                queued_counter = self._queued_counters.get(op)
                if queued_counter is None:
                    queued_counter = self._metrics.counter(
                        "tenancy_queued_total", op=op
                    )
                    self._queued_counters[op] = queued_counter
                queued_counter.inc()
            self._depth_gauge.set(len(self._queue))

    def _shed(
        self,
        state: _TenantState,
        tenant: object,
        op: str,
        budget: str,
        retry_after: float,
        qos: str,
        rate_budget: str | None = None,
    ) -> None:
        state.shed += 1
        if self._metrics is not None:
            counter = self._shed_counters.get((op, budget))
            if counter is None:
                counter = self._metrics.counter(
                    "tenancy_shed_total", op=op, budget=budget
                )
                self._shed_counters[(op, budget)] = counter
            counter.inc()
            self._depth_gauge.set(len(self._queue))
        raise TenantThrottledError(tenant, op, budget, retry_after, qos)

    # -- the governance-policy hook ------------------------------------------
    def apply_alerts(self, alerts: Iterable, now: float) -> list[object]:
        """Feed freshly raised skew alerts to the policy; returns the
        tenants it demoted this round."""
        return self.policy.on_alerts(self, alerts, now)

    # -- introspection -------------------------------------------------------
    def tenant_counts(self, tenant: object) -> tuple[int, int, int]:
        """(admitted, queued, shed) for one tenant (zeros when unseen)."""
        state = self._tenants.get(tenant)
        return (state.admitted, state.queued, state.shed) if state else (0, 0, 0)

    def totals(self) -> dict[str, int]:
        return {
            "tenants": len(self._tenants),
            "admitted": sum(s.admitted for s in self._tenants.values()),
            "queued": sum(s.queued for s in self._tenants.values()),
            "shed": sum(s.shed for s in self._tenants.values()),
            "demotions": len(self.demotions),
        }

    def rows(self, now: float, k: int | None = None) -> list[tuple]:
        """Per-tenant governance rows for :func:`cat_tenant_governance`,
        busiest (most admitted + shed) first."""
        ranked = sorted(
            self._tenants.items(),
            key=lambda item: (-(item[1].admitted + item[1].shed), str(item[0])),
        )
        if k is not None:
            ranked = ranked[:k]
        rows = []
        for tenant, state in ranked:
            rows.append(
                (
                    str(tenant),
                    self.qos_of(tenant, now),
                    state.admitted,
                    state.queued,
                    state.shed,
                    "yes" if state.demoted_until is not None else "no",
                )
            )
        return rows

    def report_lines(self) -> list[str]:
        totals = self.totals()
        lines = [
            f"tenancy: {totals['admitted']} admitted "
            f"({totals['queued']} via backpressure queue), "
            f"{totals['shed']} shed across {totals['tenants']} tenant(s)"
        ]
        if self.demotions:
            at, tenant, reason = self.demotions[-1]
            lines.append(
                f"tenancy demotions: {len(self.demotions)} "
                f"(latest {tenant!s} @ t={at:.2f}{': ' + reason if reason else ''})"
            )
        return lines

    def snapshot(self, now: float) -> dict:
        return {
            "totals": self.totals(),
            "queue_depth": self.queue_depth(now),
            "queue_capacity": self.config.queue_capacity,
            "tenants": [
                {
                    "tenant": tenant,
                    "qos": qos,
                    "admitted": admitted,
                    "queued": queued,
                    "shed": shed,
                    "demoted": demoted == "yes",
                }
                for tenant, qos, admitted, queued, shed, demoted in self.rows(now)
            ],
            "demotions": [
                {"time": at, "tenant": str(tenant), "reason": reason}
                for at, tenant, reason in self.demotions
            ],
        }


def cat_tenant_governance(db, k: int | None = None):
    """``_cat``-style governance table: one row per governed tenant with
    its QoS class and admit/queue/shed counters. Empty, well-formed table
    when the instance has no governor."""
    from repro.obsv.cat import CatTable

    governor = getattr(db, "governor", None)
    rows = governor.rows(db.now, k=k) if governor is not None else []
    return CatTable(
        "tenancy",
        ("tenant", "qos", "admitted", "queued", "shed", "demoted"),
        rows,
    )
