"""Alert-driven governance policy: demote abusive tenants automatically.

The observer's :class:`~repro.obsv.skew.SkewWindow` already raises
``hot_tenant`` alerts when one tenant dominates a write window. The
default :class:`GovernancePolicy` closes the loop: when governance is on
and an alert's window share reaches ``TenancyConfig.demote_share``, the
offending tenant is demoted to the ``batch`` QoS class for
``demote_seconds`` — its backlog then sheds first under saturation while
well-behaved tenants keep their priority. Custom policies only need an
``on_alerts(governor, alerts, now)`` method.
"""

from __future__ import annotations

from typing import Iterable


class GovernancePolicy:
    """Demote tenants named by hot-tenant skew alerts to ``batch``."""

    def __init__(self, config) -> None:
        self.config = config

    def on_alerts(self, governor, alerts: Iterable, now: float) -> list[object]:
        """Apply one round of freshly raised alerts; returns the tenants
        demoted this round (already-demoted tenants are not re-demoted,
        their window just restarts)."""
        demoted: list[object] = []
        if not self.config.auto_demote:
            return demoted
        for alert in alerts:
            if getattr(alert, "kind", None) != "hot_tenant":
                continue
            share = float(alert.measurement.get("share", 0.0))
            if share < self.config.demote_share:
                continue
            tenant = alert.subject
            already = governor.is_demoted(tenant, now)
            governor.demote(tenant, now, reason=f"hot_tenant share={share:.2f}")
            if not already:
                demoted.append(tenant)
        return demoted
