"""Token buckets and quota ledgers on the logical clock.

Both primitives take *now* as an argument on every call and keep no wall
clock: the same call sequence always yields the same admit/deny decisions,
which is what keeps governed chaos runs fingerprint-stable and the quota
reset deterministic under test.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class TokenBucket:
    """A token bucket with deterministic logical-clock refill.

    Holds at most *burst* tokens, refilled continuously at *rate* tokens
    per logical second. :meth:`acquire` may *overdraw* the bucket down to
    ``-max_debt`` — that models a bounded admission backlog: the caller
    books tokens that will only have accrued in the future and learns how
    long the backlog makes the requester wait. The clock is monotone: a
    *now* earlier than the last refill is clamped (logical clocks jump
    forward, never back).
    """

    __slots__ = ("rate", "burst", "tokens", "_last")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ConfigurationError("token bucket rate must be positive")
        if burst < 1:
            raise ConfigurationError("token bucket burst must be >= 1")
        self.rate = rate
        self.burst = burst
        self.tokens = burst  # starts full: a fresh tenant gets its burst
        self._last = 0.0

    def refill(self, now: float) -> None:
        if now > self._last:
            self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
            self._last = now

    def available(self, now: float) -> float:
        self.refill(now)
        return self.tokens

    def wait_time(self, now: float, amount: float = 1.0) -> float:
        """Logical seconds until *amount* tokens have accrued (0 when they
        are already available)."""
        self.refill(now)
        deficit = amount - self.tokens
        return deficit / self.rate if deficit > 0 else 0.0

    def acquire(self, now: float, amount: float = 1.0, max_debt: float = 0.0) -> float | None:
        """Take *amount* tokens; returns the admission delay in logical
        seconds (0.0 = admitted immediately, >0 = admitted against future
        tokens), or None when even overdrawing to ``-max_debt`` cannot
        cover the request — the caller must shed."""
        self.refill(now)
        if self.tokens - amount < -max_debt:
            return None
        delay = self.wait_time(now, amount)
        self.tokens -= amount
        return delay


class QuotaLedger:
    """Per-window usage counters with deterministic tumbling resets.

    Usage accrues into the window ``floor(now / window_seconds)``; the
    first charge with a *now* past a boundary starts the new window from
    zero. Because the boundary is a pure function of the logical clock,
    two runs that feed identical clocks see identical remaining-quota
    values at every step.
    """

    __slots__ = ("window_seconds", "_window", "_used")

    def __init__(self, window_seconds: float) -> None:
        if window_seconds <= 0:
            raise ConfigurationError("quota window must be positive")
        self.window_seconds = window_seconds
        self._window = 0
        self._used: dict[str, float] = {}

    def _roll(self, now: float) -> None:
        window = int(now // self.window_seconds)
        if window != self._window:
            self._window = window
            self._used = {}

    def used(self, kind: str, now: float) -> float:
        self._roll(now)
        return self._used.get(kind, 0.0)

    def charge(self, kind: str, amount: float, now: float) -> None:
        """Record *amount* usage of *kind* in the current window."""
        self._roll(now)
        self._used[kind] = self._used.get(kind, 0.0) + amount

    def would_exceed(self, kind: str, amount: float, limit: float | None, now: float) -> bool:
        """True when charging *amount* would push *kind* past *limit*."""
        if limit is None:
            return False
        self._roll(now)
        return self._used.get(kind, 0.0) + amount > limit

    def reset_in(self, now: float) -> float:
        """Logical seconds until the current window's quota resets."""
        self._roll(now)
        return (self._window + 1) * self.window_seconds - now
