"""repro.cache — multi-level query caching with rule-list-aware invalidation.

Three cooperating levels, mirroring how Elasticsearch absorbs repeated
query templates (the §6 workload: 1000 near-identical queries per tenant):

1. :class:`SegmentFilterCache` — per-shard posting lists keyed by
   ``(segment_id, normalized filter)``. Segments are immutable, so entries
   live until a delete dirties the segment or a merge retires it.
2. :class:`ShardRequestCache` — full per-shard subquery results keyed by
   statement fingerprint + engine read generation; invalidated through the
   engine's ``on_refresh``/``on_merge`` hooks.
3. :class:`CoordinatorResultCache` — whole fan-out results in the ESDB
   facade keyed by ``(sql fingerprint, rule-list version)``; the rule
   list's monotone version counter makes any routing change invalidate
   every dependent entry atomically, and per-shard generation validators
   preserve read-your-writes as data refreshes.

All levels evict LRU within a byte budget and report hit/miss/eviction
counters plus a byte gauge into :mod:`repro.telemetry` under a ``level``
label (``filter`` / ``request`` / ``result``).
"""

from repro.cache.config import CacheConfig
from repro.cache.filter_cache import SegmentFilterCache
from repro.cache.fingerprint import (
    filter_key,
    normalize_sql,
    sql_fingerprint,
    statement_fingerprint,
)
from repro.cache.lru import CacheStats, LruCache, estimate_bytes, posting_cost
from repro.cache.request_cache import ShardRequestCache
from repro.cache.result_cache import CoordinatorResultCache

__all__ = [
    "CacheConfig",
    "CacheStats",
    "LruCache",
    "SegmentFilterCache",
    "ShardRequestCache",
    "CoordinatorResultCache",
    "estimate_bytes",
    "posting_cost",
    "filter_key",
    "normalize_sql",
    "sql_fingerprint",
    "statement_fingerprint",
]
