"""Level 3: the coordinator result cache.

Caches whole fan-out results in the :class:`~repro.esdb.ESDB` facade, keyed
by ``(sql fingerprint, rule-list version)``. The rule-list version is the
append-only :class:`~repro.routing.rules.RuleList`'s monotone counter: any
routing change (rule append, compaction) moves every dependent cached
fan-out to an unreachable key atomically, which is what keeps
read-your-writes (§4.2) intact — a result planned against an old shard
range can never be served after the range changed.

Routing is not the only thing that can invalidate a coordinator result:
data visibility changes (refresh, segment delete) do too. Each entry
therefore carries *validators* — the ``(shard_id, engine generation)``
pairs observed at compute time — and a lookup revalidates them against the
live engines before serving, dropping the entry on mismatch. This makes a
hit safe without parsing the SQL at all.
"""

from __future__ import annotations

from typing import Callable

from repro.cache.lru import LruCache, estimate_bytes


class CoordinatorResultCache:
    """Full query results keyed by ``(fingerprint, rule-list version)``."""

    def __init__(self, max_bytes: int, *, metrics=None) -> None:
        self._lru = LruCache(max_bytes, level="result", metrics=metrics)

    @property
    def stats(self):
        return self._lru.stats

    def __len__(self) -> int:
        return len(self._lru)

    def get(
        self,
        fingerprint: str,
        rule_version: int,
        current_generation: Callable[[int], object],
    ):
        """Return the cached result, or None. *current_generation* maps a
        shard id to the engine's live read generation; any drift since the
        entry was stored drops the entry (stale data)."""
        key = (fingerprint, rule_version)
        entry = self._lru.peek(key)
        if entry is None:
            self._lru.record_miss()
            return None
        result, validators = entry
        for shard_id, generation in validators:
            if current_generation(shard_id) != generation:
                self._lru.pop(key)  # stale data: a would-be hit is a miss
                self._lru.record_miss()
                return None
        self._lru.touch(key)
        self._lru.record_hit()
        return result

    def put(
        self,
        fingerprint: str,
        rule_version: int,
        result,
        validators: tuple,
        cost: int | None = None,
    ) -> bool:
        if cost is None:
            cost = estimate_bytes(tuple(result.rows)) + 24 * len(validators)
        return self._lru.put((fingerprint, rule_version), (result, validators), cost=cost)

    def clear(self) -> None:
        self._lru.clear()
