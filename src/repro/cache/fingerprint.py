"""Stable fingerprints for cache keys.

Three key spaces, each prefixed so they can never collide:

* ``sql:`` — whitespace-normalized SQL text. Computed *before* parsing, so
  a coordinator cache hit skips the whole parse → rewrite → plan → execute
  pipeline. Normalization is semantics-preserving only (whitespace); two
  queries differing in literal case stay distinct.
* ``stmt:`` — a parsed (post-Xdriver4ES-rewrite) ``SelectStatement``. Used
  by the shard request cache: the statement fully determines the per-shard
  subquery (filters, projection, pushdown limit, order).
* ``filter:`` — one normalized leaf filter of a physical plan, the unit the
  segment filter cache stores posting lists under.

All fingerprints are short hex digests of deterministic ``repr``s — the
plan/AST nodes are frozen dataclasses whose reprs are stable within and
across processes for the literal types SQL can produce.
"""

from __future__ import annotations

import hashlib
from typing import Any

_DIGEST_CHARS = 20


def _digest(text: str) -> str:
    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:_DIGEST_CHARS]


def normalize_sql(sql: str) -> str:
    """Collapse runs of whitespace; the only rewrite safe without parsing."""
    return " ".join(sql.split())


def sql_fingerprint(sql: str) -> str:
    """Fingerprint of one SQL string (whitespace-insensitive)."""
    return "sql:" + _digest(normalize_sql(sql))


def statement_fingerprint(statement: Any) -> str:
    """Fingerprint of a parsed :class:`~repro.query.ast.SelectStatement`."""
    return "stmt:" + _digest(repr(statement))


def filter_key(kind: str, *parts: Any) -> tuple:
    """Normalized key for one leaf filter (segment filter cache).

    Kept as a plain tuple — leaf parts (column names, literals, bounds) are
    hashable, and tuple keys avoid digesting on the hottest path.
    """
    return (kind, *parts)
