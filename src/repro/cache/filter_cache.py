"""Level 1: the per-shard segment filter cache.

Caches one posting list per ``(segment_id, normalized filter)`` — the unit
Elasticsearch's node query cache uses. Segments are immutable, so an entry
stays valid for the segment's whole life with two exceptions the engine
invalidates eagerly:

* a delete marks a row dead inside the segment (posting lists are
  live-filtered at build time, so they would go stale);
* a merge replaces the segment entirely (its ``segment_id`` dies with it).

Eviction is LRU by posting-list byte cost, so one huge match-everything
filter cannot pin the budget.
"""

from __future__ import annotations

from repro.cache.lru import LruCache, posting_cost


class SegmentFilterCache:
    """Posting lists keyed by ``(segment_id, filter_key)``."""

    def __init__(self, max_bytes: int, *, metrics=None) -> None:
        self._lru = LruCache(
            max_bytes, level="filter", metrics=metrics, on_evict=self._forget
        )
        self._by_segment: dict[int, set] = {}

    @property
    def stats(self):
        return self._lru.stats

    def __len__(self) -> int:
        return len(self._lru)

    def get(self, segment_id: int, filter_key: tuple):
        return self._lru.get((segment_id, filter_key))

    def put(self, segment_id: int, filter_key: tuple, postings) -> bool:
        key = (segment_id, filter_key)
        if not self._lru.put(key, postings, cost=posting_cost(postings)):
            return False
        self._by_segment.setdefault(segment_id, set()).add(key)
        return True

    def invalidate_segment(self, segment_id: int) -> int:
        """Drop every entry of one segment (delete hit it, or it merged
        away); returns how many entries were dropped."""
        keys = self._by_segment.pop(segment_id, None)
        if not keys:
            return 0
        dropped = 0
        for key in keys:
            if self._lru.pop(key) is not None:
                dropped += 1
        return dropped

    def clear(self) -> None:
        self._lru.clear()
        self._by_segment.clear()

    def _forget(self, key, _value) -> None:
        """LRU-eviction callback: keep the per-segment key index tight."""
        segment_id = key[0]
        keys = self._by_segment.get(segment_id)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_segment[segment_id]
