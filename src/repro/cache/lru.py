"""Byte-budgeted LRU cache core shared by all three cache levels.

One :class:`LruCache` holds opaque values under hashable keys, each with an
explicit byte cost; inserting past the budget evicts from the
least-recently-used end. The cache keeps local :class:`CacheStats` (always
available, even with telemetry disabled) and mirrors them into a
:class:`~repro.telemetry.metrics.MetricsRegistry` when one is attached:
``cache_hits_total`` / ``cache_misses_total`` / ``cache_evictions_total``
counters and a ``cache_bytes`` gauge, all labeled with the cache's
``level`` so every shard's filter cache aggregates into one series.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from itertools import islice
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.telemetry.runtime import NULL_REGISTRY


@dataclass
class CacheStats:
    """Local counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    insertions: int = 0
    invalidations: int = 0
    bytes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


#: Containers larger than this are size-sampled, not fully walked: insertion
#: cost must stay far below the query cost the cache saves (result rows are
#: lists of hundreds of near-identical dicts).
_SAMPLE = 8


def estimate_bytes(value: Any, _depth: int = 0) -> int:
    """Rough, deterministic in-memory size of a cached value.

    Containers are walked to a bounded depth; large ones are estimated from
    their first ``_SAMPLE`` elements scaled to the full length. Unknown
    objects fall back to the length of their ``repr``. The estimate only
    has to be *consistent* (budgets are relative), not exact.
    """
    if value is None or isinstance(value, bool):
        return 16
    if isinstance(value, (int, float)):
        return 28
    if isinstance(value, str):
        return 49 + len(value)
    if isinstance(value, bytes):
        return 33 + len(value)
    if _depth >= 6:  # deep nests: charge a flat fee instead of recursing
        return 64
    if isinstance(value, dict):
        sampled = sum(
            estimate_bytes(k, _depth + 1) + estimate_bytes(v, _depth + 1)
            for k, v in islice(value.items(), _SAMPLE)
        )
        return 64 + _scaled(sampled, len(value))
    if isinstance(value, (list, tuple, set, frozenset)):
        sampled = sum(
            estimate_bytes(item, _depth + 1) for item in islice(value, _SAMPLE)
        )
        return 56 + 8 * len(value) + _scaled(sampled, len(value))
    sized = getattr(value, "cache_bytes", None)
    if sized is not None:
        return int(sized() if callable(sized) else sized)
    return 48 + len(repr(value))


def _scaled(sampled: int, length: int) -> int:
    """Extrapolate a ``_SAMPLE``-element cost to *length* elements."""
    if length <= _SAMPLE:
        return sampled
    return sampled * length // _SAMPLE


def posting_cost(postings) -> int:
    """Byte cost of a posting list: header + 8 bytes per row id."""
    return 64 + 8 * len(postings)


class LruCache:
    """A byte-budgeted LRU map with telemetry-wired statistics."""

    def __init__(
        self,
        max_bytes: int,
        *,
        level: str = "cache",
        metrics=None,
        on_evict: Callable[[Any, Any], None] | None = None,
    ) -> None:
        if max_bytes <= 0:
            raise ConfigurationError(f"cache budget must be positive, got {max_bytes}")
        self.max_bytes = max_bytes
        self.level = level
        self.stats = CacheStats()
        # Even a read mutates an LRU (hits reorder the recency list), so
        # every entry-map access is serialized; executor workers share the
        # request cache. Uncontended acquire cost is noise next to the
        # query work a hit saves.
        self._mutex = threading.RLock()
        self._entries: OrderedDict[Any, tuple[Any, int]] = OrderedDict()
        self._on_evict = on_evict
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._hit_counter = registry.counter("cache_hits_total", level=level)
        self._miss_counter = registry.counter("cache_misses_total", level=level)
        self._eviction_counter = registry.counter("cache_evictions_total", level=level)
        self._bytes_gauge = registry.gauge("cache_bytes", level=level)

    # -- core ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def get(self, key: Any):
        """Return the cached value or None; a hit refreshes recency."""
        with self._mutex:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                self._miss_counter.inc()
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            self._hit_counter.inc()
            return entry[0]

    def peek(self, key: Any):
        """Like :meth:`get` but without touching recency or statistics."""
        with self._mutex:
            entry = self._entries.get(key)
            return entry[0] if entry is not None else None

    def touch(self, key: Any) -> None:
        """Refresh *key*'s recency without counting a hit."""
        with self._mutex:
            if key in self._entries:
                self._entries.move_to_end(key)

    def record_hit(self) -> None:
        """Explicit accounting for callers that look up via :meth:`peek`."""
        self.stats.hits += 1
        self._hit_counter.inc()

    def record_miss(self) -> None:
        self.stats.misses += 1
        self._miss_counter.inc()

    def put(self, key: Any, value: Any, cost: int | None = None) -> bool:
        """Insert *value* under *key*; returns False when the value alone
        exceeds the whole budget (not cached)."""
        if cost is None:
            cost = estimate_bytes(value)
        if cost > self.max_bytes:
            return False
        with self._mutex:
            old = self._entries.pop(key, None)
            if old is not None:
                self._account(-old[1])
            self._entries[key] = (value, cost)
            self._account(cost)
            self.stats.insertions += 1
            while self.stats.bytes > self.max_bytes and self._entries:
                self._evict_one()
            return True

    def pop(self, key: Any):
        """Remove and return *key*'s value (None when absent); counts as an
        invalidation, not an eviction."""
        with self._mutex:
            entry = self._entries.pop(key, None)
            if entry is None:
                return None
            self._account(-entry[1])
            self.stats.invalidations += 1
            return entry[0]

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._mutex:
            dropped = len(self._entries)
            for key, (value, _) in list(self._entries.items()):
                if self._on_evict is not None:
                    self._on_evict(key, value)
            self._entries.clear()
            self._account(-self.stats.bytes)
            self.stats.invalidations += dropped
            return dropped

    def keys(self):
        with self._mutex:
            return list(self._entries.keys())

    # -- internals -------------------------------------------------------------
    def _evict_one(self) -> None:
        key, (value, cost) = self._entries.popitem(last=False)
        self._account(-cost)
        self.stats.evictions += 1
        self._eviction_counter.inc()
        if self._on_evict is not None:
            self._on_evict(key, value)

    def _account(self, delta: int) -> None:
        self.stats.bytes += delta
        self._bytes_gauge.add(delta)
