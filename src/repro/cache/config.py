"""Cache sizing and enablement knobs (``EsdbConfig.cache``)."""

from __future__ import annotations

from dataclasses import dataclass, replace

KIB = 1024
MIB = 1024 * KIB


@dataclass(frozen=True)
class CacheConfig:
    """Per-level enable switches and byte budgets.

    Attributes:
        filter_cache_enabled / filter_cache_bytes: segment filter cache
            (budget is *per shard*, like Lucene's per-segment node cache).
        request_cache_enabled / request_cache_bytes: shard request cache
            (one budget shared by all shards of the instance).
        result_cache_enabled / result_cache_bytes: coordinator result cache.
    """

    filter_cache_enabled: bool = True
    filter_cache_bytes: int = 4 * MIB
    request_cache_enabled: bool = True
    request_cache_bytes: int = 8 * MIB
    result_cache_enabled: bool = True
    result_cache_bytes: int = 8 * MIB

    @staticmethod
    def off() -> "CacheConfig":
        """Every level disabled — the caches-off baseline benchmarks use."""
        return CacheConfig(
            filter_cache_enabled=False,
            request_cache_enabled=False,
            result_cache_enabled=False,
        )

    def scaled(self, factor: float) -> "CacheConfig":
        """Same switches, budgets multiplied by *factor* (min 1 KiB)."""
        return replace(
            self,
            filter_cache_bytes=max(KIB, int(self.filter_cache_bytes * factor)),
            request_cache_bytes=max(KIB, int(self.request_cache_bytes * factor)),
            result_cache_bytes=max(KIB, int(self.result_cache_bytes * factor)),
        )
