"""Level 2: the shard request cache.

Caches one shard's full subquery result — ``(fetched source rows, matched
count)`` — keyed by ``(shard_id, statement fingerprint, generation)``. The
generation is the shard engine's read generation (bumped by refresh and by
segment-level deletes), so an entry can only ever be served against the
exact searchable state it was computed from; this mirrors Elasticsearch's
shard request cache, which keys on the reader and invalidates on refresh.

The cache additionally invalidates a shard's entries *eagerly* through the
engine's ``on_refresh``/``on_merge`` hooks (:meth:`ShardRequestCache.attach`)
to reclaim memory as soon as the old reader state becomes unreachable.
Generations are plain keys, not a gatekeeper: a point-in-time
:class:`~repro.storage.searcher.Searcher`'s pinned generation remains a
valid key after a concurrent refresh, so repeated reads through an open
searcher can re-populate and hit under the old generation while fresh
queries populate the new one.
"""

from __future__ import annotations

from repro.cache.lru import LruCache, estimate_bytes


class ShardRequestCache:
    """Per-shard subquery results keyed by fingerprint + generation."""

    def __init__(self, max_bytes: int, *, metrics=None) -> None:
        self._lru = LruCache(
            max_bytes, level="request", metrics=metrics, on_evict=self._forget
        )
        self._by_shard: dict[int, set] = {}

    @property
    def stats(self):
        return self._lru.stats

    def __len__(self) -> int:
        return len(self._lru)

    def get(self, shard_id: int, fingerprint: str, generation: object):
        return self._lru.get((shard_id, fingerprint, generation))

    def put(
        self,
        shard_id: int,
        fingerprint: str,
        generation: object,
        value,
        cost: int | None = None,
    ) -> bool:
        key = (shard_id, fingerprint, generation)
        if cost is None:
            cost = estimate_bytes(value)
        if not self._lru.put(key, value, cost=cost):
            return False
        self._by_shard.setdefault(shard_id, set()).add(key)
        return True

    def invalidate_shard(self, shard_id: int) -> int:
        """Drop every entry of one shard; returns how many were dropped."""
        keys = self._by_shard.pop(shard_id, None)
        if not keys:
            return 0
        dropped = 0
        for key in keys:
            if self._lru.pop(key) is not None:
                dropped += 1
        return dropped

    def attach(self, engine) -> None:
        """Invalidate this shard's entries on every refresh and merge, via
        the engine's existing listener hooks."""
        shard_id = engine.shard_id
        engine.on_refresh(lambda _segment: self.invalidate_shard(shard_id))
        engine.on_merge(lambda _merged, _victims: self.invalidate_shard(shard_id))

    def clear(self) -> None:
        self._lru.clear()
        self._by_shard.clear()

    def _forget(self, key, _value) -> None:
        shard_id = key[0]
        keys = self._by_shard.get(shard_id)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_shard[shard_id]
