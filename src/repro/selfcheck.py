"""Self-check: a fast end-to-end sanity pass (``python -m repro.selfcheck``).

Runs a miniature version of every major path — write/SQL round trip,
balancing + consensus, replication failover, and a short simulation — and
prints one line per check. Exits non-zero on the first failure. This is the
"doctor" command an open-source release ships so users can verify an
installation in seconds.
"""

from __future__ import annotations

import sys
import time
from typing import Callable

from repro import ESDB, EsdbConfig
from repro.balancer import BalancerConfig
from repro.cluster import ClusterTopology


def _check_write_query_roundtrip() -> str:
    db = ESDB(
        EsdbConfig(
            topology=ClusterTopology(num_nodes=2, num_shards=8),
            auto_refresh_every=None,
        )
    )
    for i in range(20):
        db.write(
            {
                "transaction_id": i,
                "tenant_id": "t",
                "created_time": float(i),
                "status": i % 2,
                "auction_title": "red cotton shirt",
                "attributes": "activity:sale",
            }
        )
    db.refresh()
    result = db.execute_sql(
        "SELECT COUNT(*) FROM transaction_logs WHERE tenant_id = 't' AND status = 1"
    )
    assert result.scalar() == 10, result.rows
    full_text = db.execute_sql(
        "SELECT * FROM t WHERE tenant_id = 't' AND MATCH(auction_title, 'cotton') LIMIT 3"
    )
    assert len(full_text.rows) == 3
    return "20 writes, SQL aggregate + full-text verified"


def _check_balancing_and_consensus() -> str:
    db = ESDB(
        EsdbConfig(
            topology=ClusterTopology(num_nodes=2, num_shards=16),
            auto_refresh_every=None,
            balancer=BalancerConfig(hotspot_share=0.3, target_share_per_shard=0.1),
        )
    )
    for i in range(100):
        db.write(
            {"transaction_id": i, "tenant_id": "whale", "created_time": i * 0.01}
        )
    committed = db.rebalance()
    assert committed, "hotspot not split"
    assert db.tenant_fanout("whale") > 1
    db.refresh()
    hits = db.execute_sql("SELECT COUNT(*) FROM t WHERE tenant_id = 'whale'")
    assert hits.scalar() == 100
    return f"hotspot split to {db.tenant_fanout('whale')} shards via consensus"


def _check_replication_failover() -> str:
    db = ESDB(
        EsdbConfig(
            topology=ClusterTopology(num_nodes=2, num_shards=4),
            auto_refresh_every=None,
            replication="physical",
        )
    )
    for i in range(30):
        db.write({"transaction_id": i, "tenant_id": 1, "created_time": float(i)})
    db.replicate()
    for shard_id in list(db.replica_sets):
        db.fail_primary(shard_id)
    db.refresh()
    assert db.execute_sql("SELECT COUNT(*) FROM t WHERE tenant_id = 1").scalar() == 30
    return "physical replication + full primary failover, zero loss"


def _check_simulation() -> str:
    from repro.routing import DynamicSecondaryHashRouting, HashRouting
    from repro.sim import SimulationConfig, WriteSimulation
    from repro.workload import StaticScenario, WorkloadConfig

    config = SimulationConfig(sample_per_tick=200)
    workload = WorkloadConfig(num_tenants=5_000, theta=1.5, seed=0)
    results = {}
    for name, policy in (
        ("hashing", HashRouting(config.num_shards)),
        ("dynamic", DynamicSecondaryHashRouting(config.num_shards)),
    ):
        sim = WriteSimulation(
            policy,
            StaticScenario(rate=200_000, duration=20.0),
            config=config,
            workload=workload,
        )
        results[name] = sim.run().throughput
    assert results["dynamic"] > results["hashing"], results
    return (
        f"simulator: dynamic {results['dynamic']:,.0f} TPS > "
        f"hashing {results['hashing']:,.0f} TPS at θ=1.5"
    )


CHECKS: list[tuple[str, Callable[[], str]]] = [
    ("write/query round trip", _check_write_query_roundtrip),
    ("balancing + consensus", _check_balancing_and_consensus),
    ("replication failover", _check_replication_failover),
    ("performance simulation", _check_simulation),
]


def main() -> int:
    failures = 0
    for name, check in CHECKS:
        start = time.perf_counter()
        try:
            detail = check()
        except Exception as exc:  # noqa: BLE001 — report and continue
            failures += 1
            print(f"[FAIL] {name}: {exc!r}")
            continue
        elapsed = time.perf_counter() - start
        print(f"[ ok ] {name}: {detail} ({elapsed:.1f}s)")
    if failures:
        print(f"{failures} check(s) failed")
        return 1
    print("all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
