"""The 2PC-variant rule-consensus protocol of §4.3.

The master assigns each proposed rule an effective time ``t = now + T`` and
runs a prepare/commit exchange with every participant (all coordinator
nodes). The protocol is *non-blocking for workloads* as long as ``T`` exceeds
the time to reach consensus: writes with creation time earlier than ``t``
always proceed; only writes newer than ``t`` are briefly held on participants
between prepare and commit, and by the time ``t`` arrives the rule is already
committed.

Failure model reproduced here:

* per-node clock skew (bounded, §4.3 requires skew << T);
* participant crash before reply → prepare timeout (``T/2``) → abort;
* network partition during prepare → abort;
* crash/partition during the commit broadcast leaves the cluster needing the
  manual-verification path the paper describes — surfaced via
  :attr:`RoundOutcome.unreachable_participants`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consensus.messages import (
    AckMessage,
    CommitMessage,
    PrepareMessage,
    PrepareReply,
    RuleProposal,
)
from repro.errors import ConfigurationError, ConsensusAborted
from repro.routing.rules import RuleList
from repro.telemetry.runtime import NULL_TELEMETRY


@dataclass
class ClockModel:
    """A local clock with a fixed skew from global simulated time.

    §4.3 requires the consensus interval ``T`` to dominate the maximum clock
    deviation (≤ 1 s in ESDB's production cluster).
    """

    skew: float = 0.0

    def now(self, global_time: float) -> float:
        return global_time + self.skew


@dataclass(frozen=True)
class ConsensusConfig:
    """Protocol timing parameters.

    Attributes:
        effective_interval: the buffering interval ``T`` added to the master's
            local time to produce the rule's effective time.
        roundtrip_latency: one prepare or commit broadcast round trip.
    """

    effective_interval: float = 5.0
    roundtrip_latency: float = 0.1

    def __post_init__(self) -> None:
        if self.effective_interval <= 0:
            raise ConfigurationError("effective_interval must be positive")
        if self.roundtrip_latency < 0:
            raise ConfigurationError("roundtrip_latency must be >= 0")

    @property
    def prepare_timeout(self) -> float:
        """Participants must reply within ``T/2`` or the round aborts."""
        return self.effective_interval / 2.0


class Participant:
    """A coordinator node participating in rule consensus.

    Tracks the latest record creation time it has executed, its local rule
    list replica, and the blocking state between prepare and commit.
    """

    def __init__(self, name: str, clock: ClockModel | None = None) -> None:
        self.name = name
        self.clock = clock or ClockModel()
        self.rules = RuleList()
        self.latest_executed_creation_time = float("-inf")
        self.blocked_after: float | None = None
        self.crashed = False
        self.partitioned = False
        self._pending: PrepareMessage | None = None

    # -- failure injection -------------------------------------------------
    def crash(self) -> None:
        """Simulate a node failure: the participant stops responding."""
        self.crashed = True

    def recover(self) -> None:
        self.crashed = False

    def partition(self) -> None:
        """Simulate a network partition isolating this participant."""
        self.partitioned = True

    def heal(self) -> None:
        self.partitioned = False

    @property
    def reachable(self) -> bool:
        return not (self.crashed or self.partitioned)

    def pending_round(self) -> int | None:
        """Round id of an accepted prepare still awaiting its decision, or
        None. A participant that crashed/partitioned between prepare and
        the commit broadcast sits in this state until caught up."""
        return self._pending.round_id if self._pending is not None else None

    # -- workload interface --------------------------------------------------
    def execute_write(self, created_time: float) -> bool:
        """Record that a write with *created_time* was executed.

        Returns False (workload held) when the write falls after the blocked
        effective time of an in-flight prepare.
        """
        if self.blocked_after is not None and created_time > self.blocked_after:
            return False
        self.latest_executed_creation_time = max(
            self.latest_executed_creation_time, created_time
        )
        return True

    def is_blocked(self, created_time: float) -> bool:
        return self.blocked_after is not None and created_time > self.blocked_after

    # -- protocol handlers ---------------------------------------------------
    def on_prepare(self, message: PrepareMessage) -> PrepareReply | None:
        """Handle a prepare: verify ``t_c < t`` for all executed records and
        block newer workloads. Returns None when unreachable."""
        if not self.reachable:
            return None
        if self._pending is not None and self._pending.round_id != message.round_id:
            # A different round's prepare is still awaiting its decision
            # (we missed the broadcast while crashed/partitioned). Silently
            # overwriting ``_pending`` would forget that round's blocked
            # state and let its rule vanish; reject until caught up.
            return PrepareReply(
                message.round_id,
                self.name,
                accepted=False,
                reason=(
                    f"round {self._pending.round_id} still in flight; "
                    "needs catch-up before accepting a new prepare"
                ),
            )
        if self.latest_executed_creation_time >= message.effective_time:
            return PrepareReply(
                message.round_id,
                self.name,
                accepted=False,
                reason=(
                    "executed record newer than effective time: "
                    f"{self.latest_executed_creation_time} >= {message.effective_time}"
                ),
            )
        self.blocked_after = message.effective_time
        self._pending = message
        return PrepareReply(message.round_id, self.name, accepted=True)

    def on_commit(self, message: CommitMessage) -> AckMessage | None:
        """Handle commit/abort: apply the rule (on commit) and unblock."""
        if not self.reachable:
            return None
        if self._pending is not None and self._pending.round_id == message.round_id:
            self._pending = None
            self.blocked_after = None
        if message.commit:
            self.rules.update(
                message.effective_time, message.proposal.offset, message.proposal.tenant_id
            )
        return AckMessage(message.round_id, self.name)


@dataclass
class RoundOutcome:
    """Result of one consensus round."""

    round_id: int
    committed: bool
    effective_time: float
    proposal: RuleProposal
    abort_reason: str = ""
    unreachable_participants: tuple = ()
    elapsed: float = 0.0


class ConsensusMaster:
    """The elected master node driving prepare/commit rounds.

    The master owns the authoritative rule list; committed rules are applied
    to it and to every reachable participant's replica.
    """

    def __init__(
        self,
        participants: list[Participant],
        config: ConsensusConfig | None = None,
        clock: ClockModel | None = None,
        telemetry=None,
    ) -> None:
        if not participants:
            raise ConfigurationError("consensus needs at least one participant")
        self.participants = list(participants)
        self.config = config or ConsensusConfig()
        self.clock = clock or ClockModel()
        self.rules = RuleList()
        self._round_counter = 0
        self.history: list[RoundOutcome] = []
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        metrics = self.telemetry.metrics
        self._committed_counter = metrics.counter(
            "consensus_rounds_total", outcome="committed"
        )
        self._aborted_counter = metrics.counter(
            "consensus_rounds_total", outcome="aborted"
        )
        self._wait_histogram = metrics.histogram("consensus_effective_wait_seconds")
        self._catchup_counter = metrics.counter("consensus_catchup_deliveries_total")

    def propose(self, proposal: RuleProposal, global_time: float) -> RoundOutcome:
        """Run one full consensus round and return its outcome.

        Raises :class:`ConsensusAborted` on abort so callers cannot silently
        treat an uncommitted rule as active; the outcome is still recorded in
        :attr:`history` either way.
        """
        self._round_counter += 1
        round_id = self._round_counter
        effective_time = self.clock.now(global_time) + self.config.effective_interval
        prepare = PrepareMessage(round_id, proposal, effective_time)
        tracer = self.telemetry.tracer

        with tracer.span(
            "consensus.round", tenant=proposal.tenant_id, offset=proposal.offset
        ):
            replies: list[PrepareReply] = []
            silent: list[str] = []
            with tracer.span("consensus.prepare"):
                for participant in self.participants:
                    reply = participant.on_prepare(prepare)
                    if reply is None:
                        silent.append(participant.name)  # timeout after T/2
                    else:
                        replies.append(reply)

            rejected = [r for r in replies if not r.accepted]
            if rejected or silent:
                reason = "; ".join(
                    [f"{r.participant}: {r.reason}" for r in rejected]
                    + [f"{name}: prepare timeout (T/2)" for name in silent]
                )
                with tracer.span("consensus.abort"):
                    self._broadcast_commit(round_id, proposal, effective_time, commit=False)
                outcome = RoundOutcome(
                    round_id,
                    committed=False,
                    effective_time=effective_time,
                    proposal=proposal,
                    abort_reason=reason,
                    elapsed=self.config.roundtrip_latency,
                )
                self.history.append(outcome)
                self._aborted_counter.inc()
                raise ConsensusAborted(reason)

            with tracer.span("consensus.commit"):
                unreachable = self._broadcast_commit(
                    round_id, proposal, effective_time, commit=True
                )
                self.rules.update(effective_time, proposal.offset, proposal.tenant_id)
            outcome = RoundOutcome(
                round_id,
                committed=True,
                effective_time=effective_time,
                proposal=proposal,
                unreachable_participants=tuple(unreachable),
                elapsed=2 * self.config.roundtrip_latency,
            )
            self.history.append(outcome)
            self._committed_counter.inc()
            self._wait_histogram.observe(effective_time - global_time)
            return outcome

    def _broadcast_commit(
        self, round_id: int, proposal: RuleProposal, effective_time: float, commit: bool
    ) -> list[str]:
        """Broadcast the commit/abort decision; returns names of participants
        that could not be reached (the manual-verification case of §4.3)."""
        message = CommitMessage(round_id, commit, proposal, effective_time)
        unreachable = []
        for participant in self.participants:
            if participant.on_commit(message) is None:
                unreachable.append(participant.name)
        return unreachable

    def repair(self, participant: Participant) -> int:
        """Re-synchronize a recovered participant's rule list from the master
        (the paper's manual fault-tolerance path). Returns rules copied."""
        copied = 0
        for rule in self.rules:
            participant.rules.insert(rule.effective_time, rule.offset, rule.tenants)
            copied += 1
        participant.blocked_after = None
        participant._pending = None
        return copied

    def catch_up(self, participant: Participant) -> int:
        """Heal-time catch-up: deliver the commit/abort decisions a
        recovered participant missed while crashed/partitioned.

        Resolves a dangling prepare (the round's recorded outcome is
        re-delivered as a commit/abort message, which applies the rule and
        lifts ``blocked_after``), then fills in any committed rules the
        participant never saw. Without this, a participant that accepted a
        prepare and missed the broadcast holds every write newer than the
        dead effective time *forever*. Returns the number of decisions and
        rules delivered; raises nothing for an unreachable participant (it
        simply cannot be caught up yet).
        """
        if not participant.reachable:
            return 0
        delivered = 0
        pending = participant.pending_round()
        if pending is not None:
            outcome = next(
                (o for o in self.history if o.round_id == pending), None
            )
            if outcome is not None:
                participant.on_commit(
                    CommitMessage(
                        outcome.round_id,
                        outcome.committed,
                        outcome.proposal,
                        outcome.effective_time,
                    )
                )
            else:
                # No recorded outcome (round evaporated with the old
                # master): treat as aborted so the block cannot outlive it.
                participant._pending = None
                participant.blocked_after = None
            delivered += 1
        # Fill in committed rules the participant missed entirely (crashed
        # through whole rounds). insert() merges by (t, s), so re-delivery
        # of rules it already holds is a no-op for routing decisions.
        reference = self.rules.snapshot()
        if participant.rules.snapshot() != reference:
            for rule in reference:
                participant.rules.insert(
                    rule.effective_time, rule.offset, rule.tenants
                )
                delivered += 1
        if delivered:
            self._catchup_counter.inc(delivered)
        return delivered

    def catch_up_all(self) -> int:
        """Catch up every reachable participant; returns total deliveries."""
        return sum(self.catch_up(p) for p in self.participants)
