"""Secondary-hashing-rule consensus (§4.3).

ESDB replaces heavyweight consensus with a 2PC variant inspired by Spanner's
commit wait: the rule list is append-only and each rule carries an effective
time chosen in the future (``t = now + T``), so the cluster only needs a
commit/abort decision per rule, never an ordering decision. Participants
verify that all locally executed records were created before ``t``, block
workloads newer than ``t`` during the window, and unblock at commit.
"""

from repro.consensus.messages import (
    AckMessage,
    CommitMessage,
    PrepareMessage,
    PrepareReply,
    RuleProposal,
)
from repro.consensus.protocol import (
    ClockModel,
    ConsensusConfig,
    ConsensusMaster,
    Participant,
    RoundOutcome,
)

__all__ = [
    "RuleProposal",
    "PrepareMessage",
    "PrepareReply",
    "CommitMessage",
    "AckMessage",
    "ClockModel",
    "ConsensusConfig",
    "ConsensusMaster",
    "Participant",
    "RoundOutcome",
]
