"""Message types exchanged by the rule-consensus protocol (Figure 5)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RuleProposal:
    """A coordinator's request to commit a new secondary hashing rule."""

    proposer: str
    tenant_id: object
    offset: int


@dataclass(frozen=True)
class PrepareMessage:
    """Master → participants: proposal plus the chosen effective time
    ``t = timer.now() + T``."""

    round_id: int
    proposal: RuleProposal
    effective_time: float


@dataclass(frozen=True)
class PrepareReply:
    """Participant → master: acceptance or error.

    A participant accepts only if every record it has already executed was
    created before the effective time; on acceptance it blocks workloads
    whose creation time is later than the effective time.
    """

    round_id: int
    participant: str
    accepted: bool
    reason: str = ""


@dataclass(frozen=True)
class CommitMessage:
    """Master → participants: commit (or abort) the proposed rule."""

    round_id: int
    commit: bool
    proposal: RuleProposal
    effective_time: float


@dataclass(frozen=True)
class AckMessage:
    """Participant → master: rule applied locally, workload block lifted."""

    round_id: int
    participant: str
