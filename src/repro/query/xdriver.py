"""Xdriver4ES: the SQL↔ES-DSL bridge plugin (§3.1).

A "smart translator" that produces cost-effective ES-DSL from SQL:

* **CNF/DNF conversion** — queries viewed as boolean formulas are converted
  to normal form to reduce AST depth;
* **predicate merge** — same-column predicates are folded
  (``tenant_id=1 OR tenant_id=2`` → ``tenant_id IN (1,2)``) to reduce AST
  width;
* **result mapping** — rows coming back from the engine are mapped into a
  SQL-shaped result set, with built-in functions such as ``IFNULL`` and
  ``date_format`` applied on projection.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import UnsupportedSqlError
from repro.query.ast import (
    SelectStatement,
    depth,
    flatten,
    merge_predicates,
    to_cnf,
    to_dnf,
    width,
)
from repro.query.dsl import DslQuery, to_dsl


@dataclass(frozen=True)
class TranslatedQuery:
    """Output of Xdriver4ES: the rewritten statement and its ES-DSL tree."""

    statement: SelectStatement
    dsl: DslQuery | None
    original_depth: int
    original_width: int

    @property
    def depth_reduction(self) -> int:
        if self.statement.where is None:
            return 0
        return self.original_depth - depth(self.statement.where)

    @property
    def width_reduction(self) -> int:
        if self.statement.where is None:
            return 0
        return self.original_width - width(self.statement.where)


class Xdriver4ES:
    """SQL → ES-DSL translator with normalization and result mapping.

    Args:
        normal_form: "dnf" (default — each disjunct plans independently),
            "cnf", or "none" to skip conversion.
    """

    def __init__(self, normal_form: str = "dnf") -> None:
        if normal_form not in ("dnf", "cnf", "none"):
            raise UnsupportedSqlError(f"unknown normal form {normal_form!r}")
        self._normal_form = normal_form

    def translate(self, statement: SelectStatement) -> TranslatedQuery:
        """Rewrite *statement*'s WHERE tree and produce the ES-DSL tree."""
        where = statement.where
        original_depth = depth(where)
        original_width = width(where)
        if where is not None:
            where = flatten(where)
            if self._normal_form == "dnf":
                where = to_dnf(where)
            elif self._normal_form == "cnf":
                where = to_cnf(where)
            where = merge_predicates(where)
        rewritten = SelectStatement(
            columns=statement.columns,
            table=statement.table,
            where=where,
            order_by=statement.order_by,
            limit=statement.limit,
            group_by=statement.group_by,
            having=statement.having,
        )
        dsl = to_dsl(where) if where is not None else None
        return TranslatedQuery(
            statement=rewritten,
            dsl=dsl,
            original_depth=original_depth,
            original_width=original_width,
        )

    # -- result mapping -----------------------------------------------------
    def map_row(self, row: Mapping[str, Any], columns: tuple) -> dict:
        """Project engine documents into SQL-shaped rows.

        Columns may be plain names or built-in function calls rendered by
        :func:`apply_function` (``IFNULL``, ``date_format``).
        """
        if columns == ("*",):
            return dict(row)
        out = {}
        for column in columns:
            out[column] = row.get(column)
        return out


def ifnull(value: Any, default: Any) -> Any:
    """SQL ``IFNULL``: *default* when *value* is None, else *value*."""
    return default if value is None else value


def date_format(epoch_seconds: float, fmt: str = "%Y-%m-%d %H:%M:%S") -> str:
    """SQL ``date_format``: render an epoch-seconds timestamp (UTC).

    ES-DSL has no type-conversion expressions, so Xdriver4ES applies this in
    its mapping module on the way back to the SQL client.
    """
    moment = _dt.datetime.fromtimestamp(float(epoch_seconds), tz=_dt.timezone.utc)
    return moment.strftime(fmt)
