"""ES-DSL: the JSON-ish query tree Elasticsearch executes.

Xdriver4ES translates SQL ASTs into this representation. The DSL encodes
query trees directly (the paper notes ES-DSL "encodes query ASTs" that are
parsed into execution plans), so the translation is a structural mapping:

* AND → ``bool.must``; OR → ``bool.should``; NOT → ``bool.must_not``;
* equality/IN → ``term``/``terms``; ranges → ``range``;
* LIKE → ``wildcard``; MATCH → ``match``; ATTR → ``sub_attr``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import UnsupportedSqlError
from repro.query.ast import (
    AndNode,
    BetweenPredicate,
    ComparisonPredicate,
    InPredicate,
    LikePredicate,
    MatchPredicate,
    NotNode,
    OrNode,
    SubAttributePredicate,
)


@dataclass(frozen=True)
class DslQuery:
    """One ES-DSL node: a kind plus its body, children for bool nodes.

    ``body`` mirrors the JSON payload Elasticsearch would receive; children
    are kept as structured nodes so the optimizer can walk them without
    re-parsing JSON.
    """

    kind: str
    body: tuple = ()
    must: tuple = ()
    should: tuple = ()
    must_not: tuple = ()

    def to_json(self) -> dict:
        """Render the node as the dict Elasticsearch's REST API would accept."""
        if self.kind == "bool":
            payload: dict[str, Any] = {}
            if self.must:
                payload["must"] = [child.to_json() for child in self.must]
            if self.should:
                payload["should"] = [child.to_json() for child in self.should]
            if self.must_not:
                payload["must_not"] = [child.to_json() for child in self.must_not]
            return {"bool": payload}
        return {self.kind: dict(self.body)}

    def leaf_count(self) -> int:
        if self.kind != "bool":
            return 1
        return sum(c.leaf_count() for c in self.must + self.should + self.must_not)

    def depth(self) -> int:
        if self.kind != "bool":
            return 1
        children = self.must + self.should + self.must_not
        return 1 + (max(c.depth() for c in children) if children else 0)


def to_dsl(node: object) -> DslQuery:
    """Translate a predicate tree into an ES-DSL tree."""
    if isinstance(node, AndNode):
        return DslQuery(kind="bool", must=tuple(to_dsl(c) for c in node.children))
    if isinstance(node, OrNode):
        return DslQuery(kind="bool", should=tuple(to_dsl(c) for c in node.children))
    if isinstance(node, NotNode):
        return DslQuery(kind="bool", must_not=(to_dsl(node.child),))
    if isinstance(node, ComparisonPredicate):
        return _comparison_to_dsl(node)
    if isinstance(node, BetweenPredicate):
        return DslQuery(
            kind="range",
            body=(("field", node.column), ("gte", node.low), ("lte", node.high)),
        )
    if isinstance(node, InPredicate):
        return DslQuery(kind="terms", body=(("field", node.column), ("values", node.values)))
    if isinstance(node, LikePredicate):
        wildcard = node.pattern.replace("%", "*").replace("_", "?")
        return DslQuery(kind="wildcard", body=(("field", node.column), ("value", wildcard)))
    if isinstance(node, MatchPredicate):
        return DslQuery(kind="match", body=(("field", node.column), ("query", node.text)))
    if isinstance(node, SubAttributePredicate):
        return DslQuery(
            kind="sub_attr", body=(("key", node.key_name), ("value", node.value))
        )
    raise UnsupportedSqlError(f"cannot translate {type(node).__name__} to ES-DSL")


def _comparison_to_dsl(pred: ComparisonPredicate) -> DslQuery:
    if pred.op == "=":
        return DslQuery(kind="term", body=(("field", pred.column), ("value", pred.value)))
    if pred.op == "!=":
        inner = DslQuery(kind="term", body=(("field", pred.column), ("value", pred.value)))
        return DslQuery(kind="bool", must_not=(inner,))
    bound = {"<": "lt", "<=": "lte", ">": "gt", ">=": "gte"}[pred.op]
    return DslQuery(kind="range", body=(("field", pred.column), (bound, pred.value)))
