"""Plan executor: interprets physical plans against one shard engine.

Every operator returns a :class:`PostingList`; the executor also keeps an
operator trace (operator name, produced list size) so tests and benchmarks
can verify plan behaviour, e.g. that Figure 8's plan produces fewer and
smaller intermediate posting lists than Figure 7's.
"""

from __future__ import annotations

import functools
import re
from dataclasses import dataclass, field
from typing import Any

from repro.errors import PlanningError
from repro.query.planner import (
    CompositeSearch,
    Exclude,
    FullScan,
    Intersect,
    MatchAll,
    PhysicalPlan,
    PlanNode,
    RangeSearch,
    SequentialScanFilter,
    SubAttributeScan,
    SubAttributeSearch,
    TermSearch,
    TermsSearch,
    TextMatch,
    Union,
    WildcardScan,
)
from repro.storage.document import FieldType, parse_attributes
from repro.storage.engine import ShardEngine
from repro.storage.postings import PostingList
from repro.telemetry.runtime import NULL_TELEMETRY


@dataclass
class ExecutionTrace:
    """Per-operator accounting for one plan execution."""

    steps: list = field(default_factory=list)

    def record(self, operator: str, produced: int) -> None:
        self.steps.append((operator, produced))

    @property
    def total_postings(self) -> int:
        """Sum of intermediate posting-list sizes — the overhead metric the
        paper's optimizer reduces (large lists are what make Figure 7 slow)."""
        return sum(size for _, size in self.steps)

    @property
    def operator_count(self) -> int:
        return len(self.steps)


@functools.lru_cache(maxsize=512)
def _like_to_regex(pattern: str) -> re.Pattern:
    """Compile a LIKE/wildcard pattern to a regex, memoized per pattern —
    uncached this recompiled on every WildcardScan/like-scan construction,
    once per query per shard for the workload's repeated templates."""
    parts = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile("^" + "".join(parts) + "$", re.IGNORECASE)


class QueryExecutor:
    """Executes physical plans on one :class:`ShardEngine`."""

    def __init__(self, engine: ShardEngine, telemetry=None) -> None:
        self.engine = engine
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

    def execute(self, plan: PhysicalPlan) -> tuple[PostingList, ExecutionTrace]:
        """Run *plan*; returns the matched rows and the operator trace."""
        trace = ExecutionTrace()
        rows = self._run(plan.root, trace)
        if self.telemetry.enabled:
            metrics = self.telemetry.metrics
            for operator, size in trace.steps:
                metrics.counter("executor_operators_total", operator=operator).inc()
                metrics.counter("executor_postings_total").inc(size)
        return rows, trace

    # -- operator dispatch -----------------------------------------------------
    def _run(self, node: PlanNode, trace: ExecutionTrace) -> PostingList:
        if isinstance(node, MatchAll):
            rows = self._all_rows()
        elif isinstance(node, TermSearch):
            rows = self._term(node.column, node.value)
        elif isinstance(node, TermsSearch):
            rows = PostingList.union_all(
                [self._term(node.column, v) for v in node.values]
            )
        elif isinstance(node, RangeSearch):
            rows = self.engine.numeric_range(
                node.column,
                node.low,
                node.high,
                include_low=node.include_low,
                include_high=node.include_high,
            )
        elif isinstance(node, TextMatch):
            rows = self.engine.text_postings(node.column, node.text)
        elif isinstance(node, WildcardScan):
            regex = _like_to_regex(node.pattern)
            rows = self.engine.full_scan(
                node.column, lambda v: v is not None and regex.match(str(v)) is not None
            )
        elif isinstance(node, SubAttributeSearch):
            rows = self.engine.subattribute_postings(node.key, node.value)
        elif isinstance(node, SubAttributeScan):
            rows = self._subattribute_scan(node.key, node.value)
        elif isinstance(node, CompositeSearch):
            kwargs: dict[str, Any] = {}
            if node.range_column is not None:
                kwargs = {
                    "range_column": node.range_column,
                    "low": node.low,
                    "high": node.high,
                    "include_low": node.include_low,
                    "include_high": node.include_high,
                }
            rows = self.engine.composite_search(
                node.index_name, dict(node.equalities), **kwargs
            )
        elif isinstance(node, SequentialScanFilter):
            child_rows = self._run(node.child, trace)
            rows = self._scan_filter(child_rows, node.column, node.op, node.value)
        elif isinstance(node, FullScan):
            rows = self._full_scan(node.column, node.op, node.value)
        elif isinstance(node, Intersect):
            rows = PostingList.intersect_all(
                [self._run(child, trace) for child in node.children]
            )
        elif isinstance(node, Union):
            rows = PostingList.union_all(
                [self._run(child, trace) for child in node.children]
            )
        elif isinstance(node, Exclude):
            keep = self._run(node.child, trace)
            drop = self._run(node.excluded, trace)
            rows = keep.difference(drop)
        else:
            raise PlanningError(f"executor has no operator for {type(node).__name__}")
        trace.record(type(node).__name__, len(rows))
        return rows

    # -- helpers -----------------------------------------------------------------
    def _all_rows(self) -> PostingList:
        lists = []
        for segment in self.engine.segments:
            lists.append(
                PostingList([row for row, _ in segment.iter_live()], presorted=True)
            )
        return PostingList.union_all(lists)

    def _term(self, column: str, value: Any) -> PostingList:
        ftype = self.engine.config.schema.type_of(column)
        if ftype is FieldType.NUMERIC:
            return self.engine.numeric_range(column, value, value)
        return self.engine.term_postings(column, value)

    def _scan_filter(self, rows: PostingList, column: str, op: str, value: Any) -> PostingList:
        predicate = _scan_predicate(op, value)
        return self.engine.scan_filter(column, rows, predicate)

    def _full_scan(self, column: str, op: str, value: Any) -> PostingList:
        predicate = _scan_predicate(op, value)
        return self.engine.full_scan(column, lambda v: v is not None and predicate(v))

    def _subattribute_scan(self, key: str, value: str) -> PostingList:
        def matches(raw: Any) -> bool:
            if raw is None:
                return False
            return parse_attributes(str(raw)).get(key) == value

        return self.engine.full_scan("attributes", matches)


def _scan_predicate(op: str, value: Any):
    if op == "=":
        return lambda v: v == value
    if op == "!=":
        return lambda v: v is not None and v != value
    if op == "<":
        return lambda v: v is not None and v < value
    if op == "<=":
        return lambda v: v is not None and v <= value
    if op == ">":
        return lambda v: v is not None and v > value
    if op == ">=":
        return lambda v: v is not None and v >= value
    if op == "in":
        allowed = set(value)
        return lambda v: v in allowed
    if op == "between":
        low, high = value
        return lambda v: v is not None and low <= v <= high
    if op == "like":
        regex = _like_to_regex(value)
        return lambda v: v is not None and regex.match(str(v)) is not None
    raise PlanningError(f"unknown scan op {op!r}")
