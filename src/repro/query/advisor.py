"""Index advisor: recommend composite indexes and the sequential-scan list.

§5.1 notes that composite indexes "have limited applicability, as the
columns must comply with the leftmost sequence", and that "DBAs are expected
to manually build composite indices among a massive amount of column
combinations". This module automates that manual step for an observed
workload:

* **composite indexes** — mine frequent AND-connected equality column sets
  from the workload's statements, order each candidate's columns by how
  often the column appears with *equality* (equality-first, range-last — the
  ordering the leftmost principle rewards), append the workload's dominant
  range column when one exists, and keep the top candidates by coverage;
* **scan list** — columns whose observed cardinality is low enough that a
  sequential scan over doc values beats maintaining and intersecting an
  index (e.g. ``status``), taken from engine statistics when available.

The advisor is purely observational: it consumes parsed statements (and
optionally per-column cardinalities) and emits an :class:`IndexAdvice` the
caller can feed into :class:`~repro.storage.engine.EngineConfig`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from repro.errors import ConfigurationError
from repro.query.ast import (
    AndNode,
    BetweenPredicate,
    ComparisonPredicate,
    NotNode,
    OrNode,
    SelectStatement,
)


@dataclass(frozen=True)
class IndexAdvice:
    """The advisor's output.

    Attributes:
        composite_indexes: recommended column tuples, most valuable first.
        scan_columns: recommended sequential-scan (doc-values) columns.
        coverage: fraction of observed conjunctions whose equality columns
            are fully covered by some recommended composite index prefix.
    """

    composite_indexes: tuple
    scan_columns: frozenset
    coverage: float


@dataclass
class _Conjunction:
    """One observed AND-group: equality columns + range columns."""

    equalities: frozenset
    ranges: frozenset


class IndexAdvisor:
    """Accumulates a query workload and recommends indexes for it."""

    def __init__(
        self,
        max_indexes: int = 3,
        max_columns_per_index: int = 3,
        scan_cardinality_threshold: int = 16,
        min_support: float = 0.05,
    ) -> None:
        if max_indexes < 1 or max_columns_per_index < 1:
            raise ConfigurationError("advisor limits must be >= 1")
        self.max_indexes = max_indexes
        self.max_columns_per_index = max_columns_per_index
        self.scan_cardinality_threshold = scan_cardinality_threshold
        self.min_support = min_support
        self._conjunctions: list[_Conjunction] = []
        self._equality_counts: Counter = Counter()
        self._range_counts: Counter = Counter()
        self._cardinalities: dict[str, int] = {}

    # -- observation -------------------------------------------------------
    def observe(self, statement: SelectStatement) -> None:
        """Record one parsed statement's WHERE structure."""
        for conjunction in _extract_conjunctions(statement.where):
            if not conjunction.equalities and not conjunction.ranges:
                continue
            self._conjunctions.append(conjunction)
            self._equality_counts.update(conjunction.equalities)
            self._range_counts.update(conjunction.ranges)

    def observe_all(self, statements: Iterable[SelectStatement]) -> None:
        for statement in statements:
            self.observe(statement)

    def set_cardinality(self, column: str, distinct_values: int) -> None:
        """Supply an observed column cardinality (e.g. from
        ``DocValues.distinct_count``) for scan-list decisions."""
        self._cardinalities[column] = distinct_values

    # -- recommendation --------------------------------------------------------
    def recommend(self) -> IndexAdvice:
        """Produce the advice for everything observed so far."""
        total = max(len(self._conjunctions), 1)
        scan_columns = self._recommend_scan_columns()

        candidate_scores: Counter = Counter()
        for conjunction in self._conjunctions:
            key_columns = frozenset(conjunction.equalities - scan_columns)
            if key_columns:
                candidate_scores[(key_columns, frozenset(conjunction.ranges))] += 1

        chosen: list[tuple] = []
        for (equalities, ranges), count in candidate_scores.most_common():
            if count / total < self.min_support and chosen:
                break
            ordered = self._order_columns(equalities, ranges)
            if ordered and not any(
                _is_prefix(ordered, existing) for existing in chosen
            ):
                chosen.append(ordered)
            if len(chosen) >= self.max_indexes:
                break

        coverage = self._coverage(chosen, scan_columns)
        return IndexAdvice(
            composite_indexes=tuple(chosen),
            scan_columns=scan_columns,
            coverage=coverage,
        )

    def _recommend_scan_columns(self) -> frozenset:
        out = set()
        for column, cardinality in self._cardinalities.items():
            if cardinality <= self.scan_cardinality_threshold:
                out.add(column)
        return frozenset(out)

    def _order_columns(self, equalities: frozenset, ranges: frozenset) -> tuple:
        """Order a candidate: equality columns by descending workload
        frequency (most-shared first → longest usable prefixes), then the
        most frequent range column last (it can only ever be the first
        non-equality column of the search)."""
        ordered = sorted(
            equalities,
            key=lambda c: (-self._equality_counts[c], c),
        )[: self.max_columns_per_index]
        budget = self.max_columns_per_index - len(ordered)
        if budget > 0 and ranges:
            best_range = max(ranges, key=lambda c: (self._range_counts[c], c))
            ordered.append(best_range)
        return tuple(ordered)

    def _coverage(self, indexes: list[tuple], scan_columns: frozenset) -> float:
        if not self._conjunctions:
            return 0.0
        covered = 0
        for conjunction in self._conjunctions:
            needed = conjunction.equalities - scan_columns
            if not needed:
                covered += 1
                continue
            for index in indexes:
                prefix_len = 0
                for column in index:
                    if column in needed:
                        prefix_len += 1
                    else:
                        break
                if prefix_len == len(needed):
                    covered += 1
                    break
        return covered / len(self._conjunctions)


def _extract_conjunctions(node) -> list[_Conjunction]:
    """Collect the AND-groups of a WHERE tree (OR branches independently)."""
    if node is None:
        return []
    if isinstance(node, OrNode):
        out = []
        for child in node.children:
            out.extend(_extract_conjunctions(child))
        return out
    if isinstance(node, NotNode):
        return _extract_conjunctions(node.child)
    equalities: set = set()
    ranges: set = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, AndNode):
            stack.extend(current.children)
        elif isinstance(current, OrNode):
            # Nested OR under an AND: its columns are not reliably usable as
            # an index prefix for this conjunction; recurse separately.
            pass
        elif isinstance(current, ComparisonPredicate):
            if current.op == "=":
                equalities.add(current.column)
            elif current.op in ("<", "<=", ">", ">="):
                ranges.add(current.column)
        elif isinstance(current, BetweenPredicate):
            ranges.add(current.column)
    return [_Conjunction(frozenset(equalities), frozenset(ranges))]


def _is_prefix(candidate: tuple, existing: tuple) -> bool:
    """True when *candidate* is a leftmost prefix of *existing* (already
    served by it) or vice versa."""
    shorter, longer = sorted((candidate, existing), key=len)
    return longer[: len(shorter)] == shorter
