"""The SQL / ES-DSL query layer (§3.1 Xdriver4ES + §5.1 query optimizer).

Pipeline::

    SQL text ──parse──▶ Query AST ──Xdriver4ES──▶ ES-DSL tree
        ──RBO──▶ physical plan ──executor──▶ posting lists ──fetch──▶ rows
        ──aggregator──▶ final result (sort / limit / aggregates)

The rule-based optimizer reproduces the paper's three access paths —
composite index (longest match), sequential scan (scan list), single-column
index — and the Figure 7 → Figure 8 plan improvement.
"""

from repro.query.ast import (
    AndNode,
    BetweenPredicate,
    ComparisonPredicate,
    InPredicate,
    LikePredicate,
    MatchPredicate,
    NotNode,
    OrNode,
    SelectStatement,
    SubAttributePredicate,
)
from repro.query.advisor import IndexAdvice, IndexAdvisor
from repro.query.dsl import DslQuery, to_dsl
from repro.query.executor import QueryExecutor
from repro.query.optimizer import AccessPath, RuleBasedOptimizer
from repro.query.planner import PhysicalPlan
from repro.query.aggregator import QueryResult, ResultAggregator
from repro.query.sql_parser import parse_sql
from repro.query.validator import StatementValidator, UnknownColumnError
from repro.query.xdriver import Xdriver4ES

__all__ = [
    "parse_sql",
    "SelectStatement",
    "AndNode",
    "OrNode",
    "NotNode",
    "ComparisonPredicate",
    "BetweenPredicate",
    "InPredicate",
    "LikePredicate",
    "MatchPredicate",
    "SubAttributePredicate",
    "DslQuery",
    "to_dsl",
    "Xdriver4ES",
    "RuleBasedOptimizer",
    "AccessPath",
    "PhysicalPlan",
    "QueryExecutor",
    "ResultAggregator",
    "QueryResult",
    "IndexAdvisor",
    "IndexAdvice",
    "StatementValidator",
    "UnknownColumnError",
]
