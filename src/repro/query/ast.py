"""Query AST: boolean trees of column predicates.

The AST mirrors what the SQL parser produces and what Xdriver4ES rewrites:
predicates (leaves) combined by AND/OR/NOT nodes. Normalization helpers
(flattening, CNF/DNF conversion, predicate merge) live here because they are
pure tree transforms; the cost-aware decisions live in the optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import UnsupportedSqlError

# -- predicates (leaves) ------------------------------------------------------


class Predicate:
    """Base class for leaf predicates. Each knows its target column."""

    column: str

    def key(self) -> tuple:
        """Hashable identity used for deduplication during normalization."""
        raise NotImplementedError


@dataclass(frozen=True)
class ComparisonPredicate(Predicate):
    """``column <op> value`` with op in =, !=, <, <=, >, >=."""

    column: str
    op: str
    value: Any

    _VALID_OPS = ("=", "!=", "<", "<=", ">", ">=")

    def __post_init__(self) -> None:
        if self.op not in self._VALID_OPS:
            raise UnsupportedSqlError(f"unsupported comparison operator {self.op!r}")

    def key(self) -> tuple:
        return ("cmp", self.column, self.op, self.value)


@dataclass(frozen=True)
class BetweenPredicate(Predicate):
    """``column BETWEEN low AND high`` (inclusive both ends, like SQL)."""

    column: str
    low: Any
    high: Any

    def key(self) -> tuple:
        return ("between", self.column, self.low, self.high)


@dataclass(frozen=True)
class InPredicate(Predicate):
    """``column IN (v1, v2, ...)``."""

    column: str
    values: tuple

    def key(self) -> tuple:
        return ("in", self.column, self.values)


@dataclass(frozen=True)
class LikePredicate(Predicate):
    """``column LIKE pattern`` with SQL ``%``/``_`` wildcards."""

    column: str
    pattern: str

    def key(self) -> tuple:
        return ("like", self.column, self.pattern)


@dataclass(frozen=True)
class MatchPredicate(Predicate):
    """``MATCH(column, 'text')`` — full-text search on an analyzed field."""

    column: str
    text: str

    def key(self) -> tuple:
        return ("match", self.column, self.text)


@dataclass(frozen=True)
class SubAttributePredicate(Predicate):
    """``ATTR(key) = value`` — filter on one sub-attribute of the
    concatenated "attributes" column (§6.3.3)."""

    key_name: str
    value: str
    column: str = "attributes"

    def key(self) -> tuple:
        return ("subattr", self.key_name, self.value)


# -- boolean nodes --------------------------------------------------------------


@dataclass(frozen=True)
class AndNode:
    children: tuple

    def __post_init__(self) -> None:
        if not self.children:
            raise UnsupportedSqlError("empty AND")


@dataclass(frozen=True)
class OrNode:
    children: tuple

    def __post_init__(self) -> None:
        if not self.children:
            raise UnsupportedSqlError("empty OR")


@dataclass(frozen=True)
class NotNode:
    child: object


BoolNode = object  # AndNode | OrNode | NotNode | Predicate


@dataclass(frozen=True)
class OrderBy:
    column: str
    descending: bool = False


@dataclass(frozen=True)
class AggregateProjection:
    """An aggregate in the SELECT list: COUNT/SUM/AVG/MIN/MAX.

    ``COUNT(*)`` is represented with column ``"*"``. The coordinator's
    result aggregator evaluates these globally (or per group) after fanning
    subqueries out to the shards (§3.2).
    """

    func: str  # "count" | "sum" | "avg" | "min" | "max"
    column: str

    _VALID = ("count", "sum", "avg", "min", "max")

    def __post_init__(self) -> None:
        if self.func not in self._VALID:
            raise UnsupportedSqlError(f"unsupported aggregate {self.func!r}")
        if self.column == "*" and self.func != "count":
            raise UnsupportedSqlError(f"{self.func.upper()}(*) is not valid SQL")

    @property
    def output_name(self) -> str:
        return f"{self.func}({self.column})"


@dataclass(frozen=True)
class FunctionProjection:
    """A scalar built-in in the SELECT list: IFNULL(col, default) or
    DATE_FORMAT(col, 'fmt').

    These are the SQL expressions ES-DSL cannot express; Xdriver4ES's
    mapping module applies them to rows on the way back to the client
    (§3.1).
    """

    func: str  # "ifnull" | "date_format"
    column: str
    argument: object = None

    _VALID = ("ifnull", "date_format")

    def __post_init__(self) -> None:
        if self.func not in self._VALID:
            raise UnsupportedSqlError(f"unsupported SQL function {self.func!r}")

    @property
    def output_name(self) -> str:
        return f"{self.func}({self.column})"


def projection_name(item: object) -> str:
    """Output column name of one SELECT-list item."""
    if isinstance(item, (AggregateProjection, FunctionProjection)):
        return item.output_name
    return str(item)


@dataclass(frozen=True)
class HavingCondition:
    """One HAVING conjunct: ``<aggregate> <op> <value>``."""

    aggregate: AggregateProjection
    op: str
    value: object

    _VALID_OPS = ("=", "!=", "<", "<=", ">", ">=")

    def __post_init__(self) -> None:
        if self.op not in self._VALID_OPS:
            raise UnsupportedSqlError(f"unsupported HAVING operator {self.op!r}")

    def holds(self, aggregate_value) -> bool:
        if aggregate_value is None:
            return False  # SQL: NULL compares to nothing
        ops = {
            "=": aggregate_value == self.value,
            "!=": aggregate_value != self.value,
            "<": aggregate_value < self.value,
            "<=": aggregate_value <= self.value,
            ">": aggregate_value > self.value,
            ">=": aggregate_value >= self.value,
        }
        return ops[self.op]


@dataclass(frozen=True)
class SelectStatement:
    """A parsed SFW statement.

    Attributes:
        columns: SELECT-list items — ``"*"``, plain column-name strings,
            :class:`AggregateProjection` or :class:`FunctionProjection`.
        table: table name (single table only — the paper's scope).
        where: boolean predicate tree, or None.
        group_by: optional grouping columns (requires aggregate projections).
        having: AND-connected aggregate filters applied per group.
        order_by: optional ordering.
        limit: optional row cap.
    """

    columns: tuple
    table: str
    where: object | None = None
    order_by: OrderBy | None = None
    limit: int | None = None
    group_by: tuple = ()
    having: tuple = ()

    @property
    def has_aggregates(self) -> bool:
        return any(isinstance(c, AggregateProjection) for c in self.columns)


# -- tree utilities ----------------------------------------------------------------


def iter_predicates(node: object) -> Iterator[Predicate]:
    """Yield every leaf predicate under *node* (pre-order)."""
    if node is None:
        return
    if isinstance(node, AndNode) or isinstance(node, OrNode):
        for child in node.children:
            yield from iter_predicates(child)
    elif isinstance(node, NotNode):
        yield from iter_predicates(node.child)
    else:
        yield node  # a Predicate


def depth(node: object) -> int:
    """Return the AST depth (the metric CNF/DNF conversion reduces)."""
    if node is None:
        return 0
    if isinstance(node, (AndNode, OrNode)):
        return 1 + max(depth(child) for child in node.children)
    if isinstance(node, NotNode):
        return 1 + depth(node.child)
    return 1


def width(node: object) -> int:
    """Return the number of leaf predicates (reduced by predicate merge)."""
    return sum(1 for _ in iter_predicates(node))


def flatten(node: object) -> object:
    """Collapse nested same-type boolean nodes and single-child wrappers."""
    if isinstance(node, AndNode):
        children = []
        for child in (flatten(c) for c in node.children):
            if isinstance(child, AndNode):
                children.extend(child.children)
            else:
                children.append(child)
        children = _dedupe(children)
        return children[0] if len(children) == 1 else AndNode(tuple(children))
    if isinstance(node, OrNode):
        children = []
        for child in (flatten(c) for c in node.children):
            if isinstance(child, OrNode):
                children.extend(child.children)
            else:
                children.append(child)
        children = _dedupe(children)
        return children[0] if len(children) == 1 else OrNode(tuple(children))
    if isinstance(node, NotNode):
        return NotNode(flatten(node.child))
    return node


def _dedupe(children: list) -> list:
    seen = set()
    out = []
    for child in children:
        key = child.key() if isinstance(child, Predicate) else id(child)
        if key not in seen:
            seen.add(key)
            out.append(child)
    return out


def push_down_not(node: object) -> object:
    """Apply De Morgan's laws so NOT appears only above leaves."""
    if isinstance(node, NotNode):
        inner = node.child
        if isinstance(inner, AndNode):
            return OrNode(tuple(push_down_not(NotNode(c)) for c in inner.children))
        if isinstance(inner, OrNode):
            return AndNode(tuple(push_down_not(NotNode(c)) for c in inner.children))
        if isinstance(inner, NotNode):
            return push_down_not(inner.child)
        if isinstance(inner, ComparisonPredicate):
            return _negate_comparison(inner)
        return node
    if isinstance(node, AndNode):
        return AndNode(tuple(push_down_not(c) for c in node.children))
    if isinstance(node, OrNode):
        return OrNode(tuple(push_down_not(c) for c in node.children))
    return node


_NEGATED_OP = {"=": "!=", "!=": "=", "<": ">=", ">=": "<", ">": "<=", "<=": ">"}


def _negate_comparison(pred: ComparisonPredicate) -> ComparisonPredicate:
    return ComparisonPredicate(pred.column, _NEGATED_OP[pred.op], pred.value)


def to_dnf(node: object, *, max_terms: int = 256) -> object:
    """Convert to disjunctive normal form: OR of ANDs of leaves.

    DNF is what Xdriver4ES targets for OR-heavy queries — each disjunct
    becomes one independently-plannable conjunction. Conversion can explode
    exponentially, so it aborts (returning the flattened input) past
    *max_terms* disjuncts, mirroring a production cost guard.
    """
    node = flatten(push_down_not(node))
    result = _dnf(node)
    if len(result) > max_terms:
        return node
    conjunctions = []
    for conj in result:
        merged = _dedupe(list(conj))
        conjunctions.append(merged[0] if len(merged) == 1 else AndNode(tuple(merged)))
    return flatten(conjunctions[0] if len(conjunctions) == 1 else OrNode(tuple(conjunctions)))


def _dnf(node: object) -> list[tuple]:
    if isinstance(node, OrNode):
        out: list[tuple] = []
        for child in node.children:
            out.extend(_dnf(child))
        return out
    if isinstance(node, AndNode):
        product: list[tuple] = [()]
        for child in node.children:
            child_terms = _dnf(child)
            product = [p + c for p in product for c in child_terms]
            if len(product) > 4096:
                # Give up early; caller falls back to the flattened tree.
                return product
        return product
    return [(node,)]


def to_cnf(node: object, *, max_terms: int = 256) -> object:
    """Convert to conjunctive normal form: AND of ORs of leaves."""
    node = flatten(push_down_not(node))
    result = _cnf(node)
    if len(result) > max_terms:
        return node
    disjunctions = []
    for disj in result:
        merged = _dedupe(list(disj))
        disjunctions.append(merged[0] if len(merged) == 1 else OrNode(tuple(merged)))
    return flatten(disjunctions[0] if len(disjunctions) == 1 else AndNode(tuple(disjunctions)))


def _cnf(node: object) -> list[tuple]:
    if isinstance(node, AndNode):
        out: list[tuple] = []
        for child in node.children:
            out.extend(_cnf(child))
        return out
    if isinstance(node, OrNode):
        product: list[tuple] = [()]
        for child in node.children:
            child_terms = _cnf(child)
            product = [p + c for p in product for c in child_terms]
            if len(product) > 4096:
                return product
        return product
    return [(node,)]


def merge_predicates(node: object) -> object:
    """Predicate merge (§3.1): combine same-column predicates.

    * ``c = v1 OR c = v2``  →  ``c IN (v1, v2)`` (also folds INs together);
    * ``c >= a AND c <= b`` →  ``c BETWEEN a AND b`` under an AND node.

    Reduces AST width before translation to ES-DSL.
    """
    if isinstance(node, OrNode):
        children = [merge_predicates(c) for c in node.children]
        merged = _merge_or_equalities(children)
        return flatten(merged[0] if len(merged) == 1 else OrNode(tuple(merged)))
    if isinstance(node, AndNode):
        children = [merge_predicates(c) for c in node.children]
        merged = _merge_and_ranges(children)
        return flatten(merged[0] if len(merged) == 1 else AndNode(tuple(merged)))
    if isinstance(node, NotNode):
        return NotNode(merge_predicates(node.child))
    return node


def _merge_or_equalities(children: list) -> list:
    by_column: dict[str, list] = {}
    passthrough = []
    for child in children:
        if isinstance(child, ComparisonPredicate) and child.op == "=":
            by_column.setdefault(child.column, []).append(child.value)
        elif isinstance(child, InPredicate):
            by_column.setdefault(child.column, []).extend(child.values)
        else:
            passthrough.append(child)
    out = list(passthrough)
    for column, values in by_column.items():
        unique = tuple(dict.fromkeys(values))
        if len(unique) == 1:
            out.append(ComparisonPredicate(column, "=", unique[0]))
        else:
            out.append(InPredicate(column, unique))
    return out


def _merge_and_ranges(children: list) -> list:
    lows: dict[str, Any] = {}
    highs: dict[str, Any] = {}
    passthrough = []
    range_columns = []
    for child in children:
        if isinstance(child, ComparisonPredicate) and child.op in (">=", "<="):
            if child.op == ">=":
                if child.column in lows:
                    lows[child.column] = max(lows[child.column], child.value)
                else:
                    lows[child.column] = child.value
                    range_columns.append(child.column)
            else:
                if child.column in highs:
                    highs[child.column] = min(highs[child.column], child.value)
                else:
                    highs[child.column] = child.value
                    if child.column not in range_columns:
                        range_columns.append(child.column)
        elif isinstance(child, BetweenPredicate):
            if child.column in lows:
                lows[child.column] = max(lows[child.column], child.low)
            else:
                lows[child.column] = child.low
                range_columns.append(child.column)
            if child.column in highs:
                highs[child.column] = min(highs[child.column], child.high)
            else:
                highs[child.column] = child.high
        else:
            passthrough.append(child)
    out = list(passthrough)
    for column in range_columns:
        low = lows.get(column)
        high = highs.get(column)
        if low is not None and high is not None:
            out.append(BetweenPredicate(column, low, high))
        elif low is not None:
            out.append(ComparisonPredicate(column, ">=", low))
        else:
            out.append(ComparisonPredicate(column, "<=", high))
    return out
