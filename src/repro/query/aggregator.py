"""Coordinator-side result aggregation (§3.2).

During query execution the coordinator first collects row ids from every
involved shard, fetches the raw documents, then performs global operations:
sort, limit, scalar-function projection, aggregates (count/sum/avg/min/max)
and GROUP BY. This module implements that second phase over the per-shard
results the executor returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.errors import QueryError
from repro.query.ast import (
    AggregateProjection,
    FunctionProjection,
    OrderBy,

)


@dataclass(frozen=True)
class QueryResult:
    """Final result of a distributed query.

    Attributes:
        rows: projected row dicts after global sort/limit (or one row per
            group for aggregate queries).
        total_hits: matched rows before LIMIT/aggregation.
        subqueries: how many shard subqueries ran (the fan-out metric that
            drives Figure 16's throughput differences).
    """

    rows: tuple
    total_hits: int
    subqueries: int

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def scalar(self) -> Any:
        """Convenience for single-aggregate queries: the one result value."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise QueryError("scalar() requires exactly one row and one column")
        return next(iter(self.rows[0].values()))


class ResultAggregator:
    """Merges per-shard row sets into a global result."""

    def __init__(
        self,
        columns: tuple = ("*",),
        order_by: OrderBy | None = None,
        limit: int | None = None,
        group_by: tuple = (),
        having: tuple = (),
    ) -> None:
        self.columns = columns
        self.order_by = order_by
        self.limit = limit
        self.group_by = tuple(group_by)
        self.having = tuple(having)
        self._aggregates = [c for c in columns if isinstance(c, AggregateProjection)]
        if self.having and not self._aggregates and not self.group_by:
            raise QueryError("HAVING requires aggregates or GROUP BY")

    def aggregate(self, shard_rows: Iterable[list[Mapping[str, Any]]]) -> QueryResult:
        """Combine rows from each shard subquery into the final result."""
        return self.aggregate_shards((rows, len(rows)) for rows in shard_rows)

    def aggregate_shards(
        self, shard_results: Iterable[tuple[list[Mapping[str, Any]], int]]
    ) -> QueryResult:
        """Like :meth:`aggregate`, but each shard reports ``(rows, matched)``
        where *matched* is its true hit count — rows may already be truncated
        by per-shard LIMIT/top-k pushdown, yet ``total_hits`` stays exact."""
        merged: list[Mapping[str, Any]] = []
        subqueries = 0
        total = 0
        for rows, matched in shard_results:
            subqueries += 1
            merged.extend(rows)
            total += matched
        if self._aggregates or self.having:
            out_rows = self._aggregate_groups(merged)
        else:
            if self.order_by is not None:
                merged = self._global_sort(merged, self.order_by)
            if self.limit is not None:
                merged = merged[: self.limit]
            out_rows = [self._project(row) for row in merged]
        if self._aggregates and self.order_by is not None:
            out_rows = self._global_sort(out_rows, self.order_by)
        if self._aggregates and self.limit is not None:
            out_rows = out_rows[: self.limit]
        return QueryResult(rows=tuple(out_rows), total_hits=total, subqueries=subqueries)

    # -- plain projection --------------------------------------------------------
    def _project(self, row: Mapping[str, Any]) -> dict:
        if self.columns == ("*",):
            return dict(row)
        out = {}
        for item in self.columns:
            if isinstance(item, FunctionProjection):
                out[item.output_name] = apply_function(item, row)
            else:
                out[str(item)] = row.get(str(item))
        return out

    # -- grouped aggregation --------------------------------------------------------
    def _aggregate_groups(self, rows: list) -> list[dict]:
        groups: dict[tuple, list] = {}
        for row in rows:
            key = tuple(row.get(column) for column in self.group_by)
            groups.setdefault(key, []).append(row)
        if not self.group_by and not groups:
            groups[()] = []  # global aggregate over an empty result set
        out = []
        for key, members in groups.items():
            if not all(
                condition.holds(_evaluate_aggregate(condition.aggregate, members))
                for condition in self.having
            ):
                continue
            result_row: dict[str, Any] = dict(zip(self.group_by, key))
            for item in self.columns:
                if isinstance(item, AggregateProjection):
                    result_row[item.output_name] = _evaluate_aggregate(item, members)
                elif isinstance(item, FunctionProjection):
                    sample = members[0] if members else {}
                    result_row[item.output_name] = apply_function(item, sample)
                elif str(item) not in result_row:
                    result_row[str(item)] = members[0].get(str(item)) if members else None
            out.append(result_row)
        # Deterministic order: by group key (None-safe).
        out.sort(key=lambda r: tuple(_sort_key(r.get(c)) for c in self.group_by))
        return out

    @staticmethod
    def _global_sort(rows: list, order_by: OrderBy) -> list:
        column = order_by.column

        def key(row: Mapping[str, Any]):
            return _sort_key(row.get(column))

        try:
            return sorted(rows, key=key, reverse=order_by.descending)
        except TypeError as exc:
            raise QueryError(
                f"cannot sort mixed-type values in column {column!r}"
            ) from exc


def _sort_key(value: Any) -> tuple:
    """None sorts first ascending, last descending (MySQL behaviour)."""
    return (value is not None, value) if value is not None else (False, 0)


def _evaluate_aggregate(item: AggregateProjection, rows: list) -> Any:
    if item.func == "count":
        if item.column == "*":
            return len(rows)
        return sum(1 for row in rows if row.get(item.column) is not None)
    values = [row[item.column] for row in rows if row.get(item.column) is not None]
    if not values:
        return None  # SQL: aggregates over empty/NULL-only input yield NULL
    if item.func == "sum":
        return sum(values)
    if item.func == "avg":
        return sum(values) / len(values)
    if item.func == "min":
        return min(values)
    return max(values)


def apply_function(item: FunctionProjection, row: Mapping[str, Any]) -> Any:
    """Evaluate a scalar built-in over one row (Xdriver4ES mapping, §3.1)."""
    from repro.query.xdriver import date_format, ifnull

    value = row.get(item.column)
    if item.func == "ifnull":
        return ifnull(value, item.argument)
    if value is None:
        return None
    return date_format(value, item.argument or "%Y-%m-%d %H:%M:%S")


def aggregate_metric(rows: Iterable[Mapping[str, Any]], column: str, op: str) -> float:
    """Global aggregate over fetched rows: count/sum/avg/min/max."""
    values = [row[column] for row in rows if row.get(column) is not None]
    if op == "count":
        return float(len(values))
    if not values:
        raise QueryError(f"no non-null values in column {column!r} for {op}")
    if op == "sum":
        return float(sum(values))
    if op == "avg":
        return float(sum(values)) / len(values)
    if op == "min":
        return float(min(values))
    if op == "max":
        return float(max(values))
    raise QueryError(f"unknown aggregate {op!r}")
