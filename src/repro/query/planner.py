"""Physical query plans.

A physical plan is a tree of operators over posting lists — exactly the
shape of the paper's Figures 7 and 8: leaf operators produce posting lists
(index search, composite index search, full-text match), inner operators
combine them (intersect, union), and the sequential-scan operator filters an
incoming posting list through doc values.

Plans here are *descriptive*: the executor interprets them against a
:class:`~repro.storage.engine.ShardEngine`. Keeping them as data makes the
optimizer testable (assert the plan shape) and lets benchmarks count
operator costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


class PlanNode:
    """Base class for physical plan operators."""

    def describe(self, indent: int = 0) -> str:
        raise NotImplementedError

    def leaf_operators(self) -> list["PlanNode"]:
        return [self]


@dataclass(frozen=True)
class TermSearch(PlanNode):
    """Single-column inverted-index lookup (Figure 7's "Index Search")."""

    column: str
    value: Any

    def describe(self, indent: int = 0) -> str:
        return " " * indent + f"IndexSearch {self.column} = {self.value!r}"


@dataclass(frozen=True)
class TermsSearch(PlanNode):
    """Multi-value index lookup (IN list), a union of term lookups."""

    column: str
    values: tuple

    def describe(self, indent: int = 0) -> str:
        return " " * indent + f"IndexSearch {self.column} IN {self.values!r}"


@dataclass(frozen=True)
class RangeSearch(PlanNode):
    """Sorted-index range lookup on a numeric column."""

    column: str
    low: Any = None
    high: Any = None
    include_low: bool = True
    include_high: bool = True

    def describe(self, indent: int = 0) -> str:
        lo = "(" if not self.include_low else "["
        hi = ")" if not self.include_high else "]"
        return " " * indent + f"RangeSearch {self.column} {lo}{self.low}, {self.high}{hi}"


@dataclass(frozen=True)
class TextMatch(PlanNode):
    """Analyzed full-text match on a TEXT column."""

    column: str
    text: str

    def describe(self, indent: int = 0) -> str:
        return " " * indent + f"TextMatch {self.column} ~ {self.text!r}"


@dataclass(frozen=True)
class WildcardScan(PlanNode):
    """LIKE evaluation — a scan over doc values with a compiled pattern."""

    column: str
    pattern: str

    def describe(self, indent: int = 0) -> str:
        return " " * indent + f"WildcardScan {self.column} LIKE {self.pattern!r}"


@dataclass(frozen=True)
class SubAttributeSearch(PlanNode):
    """Lookup in the sub-attribute index of the "attributes" column."""

    key: str
    value: str

    def describe(self, indent: int = 0) -> str:
        return " " * indent + f"SubAttrSearch {self.key}:{self.value}"


@dataclass(frozen=True)
class SubAttributeScan(PlanNode):
    """Fallback when a sub-attribute is not frequency-indexed: parse and scan
    the raw "attributes" doc values (the slow path Figure 18 quantifies)."""

    key: str
    value: str

    def describe(self, indent: int = 0) -> str:
        return " " * indent + f"SubAttrScan {self.key}:{self.value} (unindexed)"


@dataclass(frozen=True)
class CompositeSearch(PlanNode):
    """Composite-index search: equality prefix + optional range (Figure 8)."""

    index_name: str
    equalities: tuple  # ((column, value), ...)
    range_column: str | None = None
    low: Any = None
    high: Any = None
    include_low: bool = True
    include_high: bool = True

    def describe(self, indent: int = 0) -> str:
        eq = ", ".join(f"{c}={v!r}" for c, v in self.equalities)
        text = f"CompositeIndexSearch {self.index_name} [{eq}]"
        if self.range_column:
            text += f" range {self.range_column} in [{self.low}, {self.high}]"
        return " " * indent + text


@dataclass(frozen=True)
class SequentialScanFilter(PlanNode):
    """Filter an input plan's posting list by scanning doc values (§5.1)."""

    child: PlanNode
    column: str
    op: str  # "=", "!=", "in", "between", "like"
    value: Any

    def describe(self, indent: int = 0) -> str:
        head = " " * indent + f"SeqScanFilter {self.column} {self.op} {self.value!r}"
        return head + "\n" + self.child.describe(indent + 2)

    def leaf_operators(self) -> list[PlanNode]:
        return self.child.leaf_operators()


@dataclass(frozen=True)
class FullScan(PlanNode):
    """Whole-column scan (last resort; e.g. negated predicate at the root)."""

    column: str
    op: str
    value: Any

    def describe(self, indent: int = 0) -> str:
        return " " * indent + f"FullScan {self.column} {self.op} {self.value!r}"


@dataclass(frozen=True)
class Intersect(PlanNode):
    children: tuple

    def describe(self, indent: int = 0) -> str:
        lines = [" " * indent + "Intersect"]
        lines.extend(child.describe(indent + 2) for child in self.children)
        return "\n".join(lines)

    def leaf_operators(self) -> list[PlanNode]:
        out = []
        for child in self.children:
            out.extend(child.leaf_operators())
        return out


@dataclass(frozen=True)
class Union(PlanNode):
    children: tuple

    def describe(self, indent: int = 0) -> str:
        lines = [" " * indent + "Union"]
        lines.extend(child.describe(indent + 2) for child in self.children)
        return "\n".join(lines)

    def leaf_operators(self) -> list[PlanNode]:
        out = []
        for child in self.children:
            out.extend(child.leaf_operators())
        return out


@dataclass(frozen=True)
class Exclude(PlanNode):
    """Set difference: rows of *child* not matched by *excluded*."""

    child: PlanNode
    excluded: PlanNode

    def describe(self, indent: int = 0) -> str:
        lines = [" " * indent + "Exclude"]
        lines.append(self.child.describe(indent + 2))
        lines.append(" " * (indent + 2) + "NOT:")
        lines.append(self.excluded.describe(indent + 4))
        return "\n".join(lines)

    def leaf_operators(self) -> list[PlanNode]:
        return self.child.leaf_operators() + self.excluded.leaf_operators()


@dataclass(frozen=True)
class MatchAll(PlanNode):
    """Every live row of the shard (SELECT without WHERE)."""

    def describe(self, indent: int = 0) -> str:
        return " " * indent + "MatchAll"


@dataclass(frozen=True)
class PhysicalPlan:
    """A complete per-shard plan plus the projection/ordering envelope."""

    root: PlanNode
    columns: tuple = ("*",)
    order_by: object | None = None
    limit: int | None = None

    def describe(self) -> str:
        return self.root.describe()

    def access_path_counts(self) -> dict[str, int]:
        """Count leaf operators by type — the metric Figures 7/8 contrast."""
        counts: dict[str, int] = {}
        for leaf in self.root.leaf_operators():
            name = type(leaf).__name__
            counts[name] = counts.get(name, 0) + 1
        return counts
