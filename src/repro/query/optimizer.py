"""The rule-based optimizer (RBO) of §5.1.

For AND-connected predicates the RBO ranks access paths:

1. **Composite index** — when equality predicates cover a leftmost prefix of
   some composite index, pick the longest match; a range predicate on the
   next index column folds into the same search.
2. **Sequential scan** — remaining predicates on columns in the *scan list*
   become :class:`SequentialScanFilter` operators layered on the chosen
   index plan (cheap: they only touch rows already selected).
3. **Single-column index** — everything else gets its own index search and
   is intersected (the Lucene/Figure-7 default).

OR branches are planned independently and unioned. With the optimizer
disabled, every predicate becomes a single-column index search — exactly
Lucene's rigid plan — which is what Figure 17's "without optimizer" baseline
measures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import PlanningError
from repro.query.ast import (
    AndNode,
    BetweenPredicate,
    ComparisonPredicate,
    InPredicate,
    LikePredicate,
    MatchPredicate,
    NotNode,
    OrNode,
    Predicate,
    SelectStatement,
    SubAttributePredicate,
    flatten,
)
from repro.query.planner import (
    CompositeSearch,
    Exclude,
    FullScan,
    Intersect,
    MatchAll,
    PhysicalPlan,
    PlanNode,
    RangeSearch,
    SequentialScanFilter,
    SubAttributeScan,
    SubAttributeSearch,
    TermSearch,
    TermsSearch,
    TextMatch,
    Union,
    WildcardScan,
)
from repro.storage.document import FieldType, Schema
from repro.telemetry.runtime import NULL_TELEMETRY


class AccessPath(enum.Enum):
    """The three access paths the RBO ranks (§5.1)."""

    COMPOSITE_INDEX = "composite-index"
    SEQUENTIAL_SCAN = "sequential-scan"
    SINGLE_COLUMN_INDEX = "single-column-index"


@dataclass(frozen=True)
class CatalogInfo:
    """What the optimizer knows about a shard's indexes.

    Attributes:
        schema: field types.
        composite_indexes: tuples of column names, one per composite index.
        scan_columns: the scan list (low-cardinality columns suited to
            sequential scan over doc values).
        indexed_subattributes: frequency-indexed sub-attribute names, or None
            when every sub-attribute is indexed.
    """

    schema: Schema
    composite_indexes: tuple = ()
    scan_columns: frozenset = frozenset()
    indexed_subattributes: frozenset | None = None


class RuleBasedOptimizer:
    """Builds :class:`PhysicalPlan` trees from rewritten SELECT statements."""

    def __init__(
        self, catalog: CatalogInfo, *, enabled: bool = True, telemetry=None
    ) -> None:
        self.catalog = catalog
        self.enabled = enabled
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        metrics = self.telemetry.metrics
        self._pick_counters = {
            path: metrics.counter("optimizer_plan_picks_total", path=path.value)
            for path in AccessPath
        }

    def plan(self, statement: SelectStatement) -> PhysicalPlan:
        """Plan one statement (whose WHERE tree Xdriver4ES already rewrote)."""
        if statement.where is None:
            root: PlanNode = MatchAll()
        else:
            root = self._plan_node(flatten(statement.where))
        return PhysicalPlan(
            root=root,
            columns=statement.columns,
            order_by=statement.order_by,
            limit=statement.limit,
        )

    # -- recursive planning ----------------------------------------------------
    def _plan_node(self, node: object) -> PlanNode:
        if isinstance(node, OrNode):
            return Union(tuple(self._plan_node(child) for child in node.children))
        if isinstance(node, AndNode):
            return self._plan_conjunction(list(node.children))
        if isinstance(node, NotNode):
            return self._plan_negation(node)
        return self._plan_conjunction([node])

    def _plan_negation(self, node: NotNode) -> PlanNode:
        inner = self._plan_node(node.child)
        return Exclude(MatchAll(), inner)

    def _plan_conjunction(self, predicates: list) -> PlanNode:
        """Plan AND-connected predicates with the three-path ranking."""
        nested = [p for p in predicates if isinstance(p, (AndNode, OrNode, NotNode))]
        leaves = [p for p in predicates if isinstance(p, Predicate)]
        parts: list[PlanNode] = [self._plan_node(n) for n in nested]

        if not self.enabled:
            for p in leaves:
                self._pick_counters[AccessPath.SINGLE_COLUMN_INDEX].inc()
                parts.append(self._single_column_plan(p))
            return _combine_intersect(parts)

        remaining = list(leaves)
        base: PlanNode | None = None

        composite_pick = self._pick_composite(remaining)
        if composite_pick is not None:
            base, used = composite_pick
            remaining = [p for p in remaining if p not in used]
            self._pick_counters[AccessPath.COMPOSITE_INDEX].inc()

        scan_predicates = [p for p in remaining if self._scannable(p)]
        index_predicates = [p for p in remaining if p not in scan_predicates]

        index_parts = []
        for p in index_predicates:
            self._pick_counters[AccessPath.SINGLE_COLUMN_INDEX].inc()
            index_parts.append(self._single_column_plan(p))
        if base is not None:
            index_parts.insert(0, base)
        plan = _combine_intersect(parts + index_parts)

        # Layer sequential scans over the selected rows — cheapest last stage.
        for predicate in scan_predicates:
            self._pick_counters[AccessPath.SEQUENTIAL_SCAN].inc()
            plan = self._wrap_scan(plan, predicate)
        return plan

    # -- composite index selection ------------------------------------------------
    def _pick_composite(self, predicates: list):
        """Return ``(CompositeSearch, used_predicates)`` for the longest-match
        composite index, or None when no index is applicable."""
        equalities: dict[str, Predicate] = {}
        ranges: dict[str, Predicate] = {}
        for predicate in predicates:
            if isinstance(predicate, ComparisonPredicate) and predicate.op == "=":
                equalities.setdefault(predicate.column, predicate)
            elif isinstance(predicate, BetweenPredicate):
                ranges.setdefault(predicate.column, predicate)
            elif isinstance(predicate, ComparisonPredicate) and predicate.op in (
                "<",
                "<=",
                ">",
                ">=",
            ):
                ranges.setdefault(predicate.column, predicate)

        best = None
        best_score = (0, 0)  # (equality match length, has range)
        for columns in self.catalog.composite_indexes:
            match_len = 0
            for column in columns:
                if column in equalities:
                    match_len += 1
                else:
                    break
            if match_len == 0:
                continue
            range_column = None
            if match_len < len(columns) and columns[match_len] in ranges:
                range_column = columns[match_len]
            score = (match_len, 1 if range_column else 0)
            if score > best_score:
                best_score = score
                best = (columns, match_len, range_column)
        if best is None:
            return None

        columns, match_len, range_column = best
        used: list[Predicate] = [equalities[c] for c in columns[:match_len]]
        eq_pairs = tuple((c, equalities[c].value) for c in columns[:match_len])
        low = high = None
        include_low = include_high = True
        if range_column is not None:
            range_pred = ranges[range_column]
            used.append(range_pred)
            if isinstance(range_pred, BetweenPredicate):
                low, high = range_pred.low, range_pred.high
            else:
                if range_pred.op in (">", ">="):
                    low = range_pred.value
                    include_low = range_pred.op == ">="
                else:
                    high = range_pred.value
                    include_high = range_pred.op == "<="
        search = CompositeSearch(
            index_name="_".join(columns),
            equalities=eq_pairs,
            range_column=range_column,
            low=low,
            high=high,
            include_low=include_low,
            include_high=include_high,
        )
        return search, used

    # -- sequential scan ------------------------------------------------------------
    def _scannable(self, predicate: Predicate) -> bool:
        if isinstance(predicate, SubAttributePredicate):
            return False
        if isinstance(predicate, MatchPredicate):
            return False
        return predicate.column in self.catalog.scan_columns

    def _wrap_scan(self, plan: PlanNode, predicate: Predicate) -> PlanNode:
        if isinstance(predicate, ComparisonPredicate):
            return SequentialScanFilter(plan, predicate.column, predicate.op, predicate.value)
        if isinstance(predicate, BetweenPredicate):
            return SequentialScanFilter(
                plan, predicate.column, "between", (predicate.low, predicate.high)
            )
        if isinstance(predicate, InPredicate):
            return SequentialScanFilter(plan, predicate.column, "in", predicate.values)
        if isinstance(predicate, LikePredicate):
            return SequentialScanFilter(plan, predicate.column, "like", predicate.pattern)
        raise PlanningError(f"cannot scan-filter {type(predicate).__name__}")

    # -- single-column paths -----------------------------------------------------------
    def _single_column_plan(self, predicate: Predicate) -> PlanNode:
        schema = self.catalog.schema
        if isinstance(predicate, SubAttributePredicate):
            allowed = self.catalog.indexed_subattributes
            if allowed is None or predicate.key_name in allowed:
                return SubAttributeSearch(predicate.key_name, predicate.value)
            return SubAttributeScan(predicate.key_name, predicate.value)
        if isinstance(predicate, MatchPredicate):
            return TextMatch(predicate.column, predicate.text)
        if isinstance(predicate, LikePredicate):
            return WildcardScan(predicate.column, predicate.pattern)
        if isinstance(predicate, InPredicate):
            return TermsSearch(predicate.column, predicate.values)
        if isinstance(predicate, BetweenPredicate):
            return RangeSearch(predicate.column, predicate.low, predicate.high)
        if isinstance(predicate, ComparisonPredicate):
            ftype = schema.type_of(predicate.column)
            if predicate.op == "=":
                if ftype is FieldType.NUMERIC:
                    return RangeSearch(predicate.column, predicate.value, predicate.value)
                return TermSearch(predicate.column, predicate.value)
            if predicate.op == "!=":
                if ftype is FieldType.NUMERIC:
                    inner: PlanNode = RangeSearch(
                        predicate.column, predicate.value, predicate.value
                    )
                else:
                    inner = TermSearch(predicate.column, predicate.value)
                return Exclude(MatchAll(), inner)
            if ftype is not FieldType.NUMERIC:
                return FullScan(predicate.column, predicate.op, predicate.value)
            low = high = None
            include_low = include_high = True
            if predicate.op in (">", ">="):
                low = predicate.value
                include_low = predicate.op == ">="
            else:
                high = predicate.value
                include_high = predicate.op == "<="
            return RangeSearch(
                predicate.column,
                low,
                high,
                include_low=include_low,
                include_high=include_high,
            )
        raise PlanningError(f"no access path for {type(predicate).__name__}")


def _combine_intersect(parts: list[PlanNode]) -> PlanNode:
    if not parts:
        return MatchAll()
    if len(parts) == 1:
        return parts[0]
    return Intersect(tuple(parts))
