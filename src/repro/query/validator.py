"""Semantic validation of statements against the schema.

The engine answers queries over unknown columns with empty posting lists —
technically sound for a flexible-schema store, but silently wrong for the
fat-fingered column name in an ad-hoc seller query. The validator checks a
parsed (or rewritten) statement against the declared schema and the known
dynamic fields, and reports every problem at once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError
from repro.query.ast import (
    AggregateProjection,
    FunctionProjection,
    MatchPredicate,
    SelectStatement,
    SubAttributePredicate,
    iter_predicates,
)
from repro.storage.document import FieldType, Schema


class UnknownColumnError(QueryError):
    """A statement references columns the schema does not declare."""

    def __init__(self, problems: list[str]) -> None:
        super().__init__("; ".join(problems))
        self.problems = list(problems)


@dataclass(frozen=True)
class StatementValidator:
    """Validates statements against a :class:`Schema`.

    Args:
        schema: declared fields.
        allow_dynamic: when True (the flexible-schema default), unknown
            columns in *predicates* only produce warnings collected by
            :meth:`check`; when False they raise.
    """

    schema: Schema
    allow_dynamic: bool = False

    def _known(self, column: str) -> bool:
        return column in self.schema.fields

    def check(self, statement: SelectStatement) -> list[str]:
        """Return a list of problems (empty = statement is clean)."""
        problems: list[str] = []
        for item in statement.columns:
            if item == "*":
                continue
            if isinstance(item, (AggregateProjection, FunctionProjection)):
                column = item.column
                if column != "*" and not self._known(column):
                    problems.append(f"unknown column {column!r} in {item.output_name}")
            elif not self._known(str(item)):
                problems.append(f"unknown column {item!r} in SELECT list")
        for column in statement.group_by:
            if not self._known(column):
                problems.append(f"unknown column {column!r} in GROUP BY")
        if statement.order_by is not None:
            column = statement.order_by.column
            known_outputs = {
                item.output_name
                for item in statement.columns
                if isinstance(item, (AggregateProjection, FunctionProjection))
            }
            if not self._known(column) and column not in known_outputs:
                problems.append(f"unknown column {column!r} in ORDER BY")
        for predicate in iter_predicates(statement.where):
            if isinstance(predicate, SubAttributePredicate):
                continue  # sub-attributes are schemaless by design
            column = predicate.column
            if not self._known(column):
                problems.append(f"unknown column {column!r} in WHERE")
            elif isinstance(predicate, MatchPredicate):
                if self.schema.type_of(column) is not FieldType.TEXT:
                    problems.append(
                        f"MATCH() requires a TEXT column, {column!r} is "
                        f"{self.schema.type_of(column).value}"
                    )
        return problems

    def validate(self, statement: SelectStatement) -> None:
        """Raise :class:`UnknownColumnError` when :meth:`check` finds
        problems (predicate-only problems tolerated if *allow_dynamic*)."""
        problems = self.check(statement)
        if self.allow_dynamic:
            problems = [p for p in problems if "in WHERE" not in p]
        if problems:
            raise UnknownColumnError(problems)
