"""SQL parser for the supported SFW subset.

Supports the statement shape the paper's workloads use::

    SELECT col1, col2 | *
    FROM table
    WHERE <predicates combined with AND/OR/NOT, parenthesized>
    [ORDER BY col [ASC|DESC]]
    [LIMIT n]

Predicates: ``=, !=, <>, <, <=, >, >=``, ``BETWEEN a AND b``,
``IN (v, ...)``, ``LIKE 'pattern'``, ``MATCH(col, 'text')`` (full-text) and
``ATTR(key) = 'value'`` (sub-attribute filter). Values are integers, floats
and single-quoted strings; timestamp strings like ``'2021-09-16 00:00:00'``
are converted to epoch seconds so they compare numerically with the
``created_time`` column.
"""

from __future__ import annotations

import datetime as _dt
import re
from dataclasses import dataclass
from typing import Any

from repro.errors import SqlSyntaxError, UnsupportedSqlError
from repro.query.ast import (
    AggregateProjection,
    AndNode,
    BetweenPredicate,
    ComparisonPredicate,
    FunctionProjection,
    InPredicate,
    LikePredicate,
    MatchPredicate,
    NotNode,
    OrderBy,
    OrNode,
    SelectStatement,
    SubAttributePredicate,
)

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<string>'(?:[^']|'')*')"
    r"|(?P<number>-?\d+(?:\.\d+)?)"
    r"|(?P<op><>|<=|>=|!=|=|<|>)"
    r"|(?P<punct>[(),*])"
    r"|(?P<word>[A-Za-z_][A-Za-z0-9_.]*)"
    r")"
)

_TIMESTAMP_RE = re.compile(r"^\d{4}-\d{2}-\d{2}(?: \d{2}:\d{2}:\d{2})?$")

_AGGREGATES = frozenset({"count", "sum", "avg", "min", "max"})
_SCALAR_FUNCS = frozenset({"ifnull", "date_format"})

# Words that can never be a projected column name. "group" is excluded on
# purpose: the transaction-log template has a column literally named group.
_RESERVED_IN_PROJECTION = frozenset(
    "select from where and or not between in like order by asc desc limit having".split()
)


@dataclass(frozen=True)
class _Token:
    kind: str  # "string" | "number" | "op" | "punct" | "word" | "eof"
    value: str
    position: int


def _lex(sql: str) -> list[_Token]:
    tokens = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            remainder = sql[pos:].strip()
            if not remainder:
                break
            raise SqlSyntaxError(f"cannot tokenize SQL at position {pos}: {remainder[:20]!r}")
        pos = match.end()
        for kind in ("string", "number", "op", "punct", "word"):
            value = match.group(kind)
            if value is not None:
                tokens.append(_Token(kind, value, match.start()))
                break
    tokens.append(_Token("eof", "", len(sql)))
    return tokens


def timestamp_to_epoch(text: str) -> float:
    """Convert ``YYYY-MM-DD [HH:MM:SS]`` to epoch seconds (UTC)."""
    fmt = "%Y-%m-%d %H:%M:%S" if " " in text else "%Y-%m-%d"
    moment = _dt.datetime.strptime(text, fmt).replace(tzinfo=_dt.timezone.utc)
    return moment.timestamp()


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, sql: str) -> None:
        self._sql = sql
        self._tokens = _lex(sql)
        self._index = 0

    # -- token helpers -------------------------------------------------------
    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _expect_word(self, word: str) -> None:
        token = self._advance()
        if token.kind != "word" or token.value.lower() != word:
            raise SqlSyntaxError(
                f"expected {word.upper()!r} at position {token.position}, got {token.value!r}"
            )

    def _expect_punct(self, punct: str) -> None:
        token = self._advance()
        if token.kind != "punct" or token.value != punct:
            raise SqlSyntaxError(
                f"expected {punct!r} at position {token.position}, got {token.value!r}"
            )

    def _at_word(self, word: str) -> bool:
        token = self._peek()
        return token.kind == "word" and token.value.lower() == word

    # -- grammar ------------------------------------------------------------------
    def parse(self) -> SelectStatement:
        self._expect_word("select")
        columns = self._parse_projection()
        self._expect_word("from")
        table_token = self._advance()
        if table_token.kind != "word":
            raise SqlSyntaxError(f"expected table name, got {table_token.value!r}")
        table = table_token.value
        where = None
        if self._at_word("where"):
            self._advance()
            where = self._parse_or()
        group_by: tuple = ()
        if self._at_word("group"):
            self._advance()
            self._expect_word("by")
            group_columns = []
            while True:
                token = self._advance()
                if token.kind != "word":
                    raise SqlSyntaxError("expected column after GROUP BY")
                group_columns.append(token.value)
                if self._peek().kind == "punct" and self._peek().value == ",":
                    self._advance()
                    continue
                break
            group_by = tuple(group_columns)
        having: tuple = ()
        if self._at_word("having"):
            self._advance()
            conditions = [self._parse_having_condition()]
            while self._at_word("and"):
                self._advance()
                conditions.append(self._parse_having_condition())
            having = tuple(conditions)
        order_by = None
        if self._at_word("order"):
            self._advance()
            self._expect_word("by")
            column = self._advance()
            if column.kind != "word":
                raise SqlSyntaxError("expected column after ORDER BY")
            descending = False
            if self._at_word("desc"):
                self._advance()
                descending = True
            elif self._at_word("asc"):
                self._advance()
            order_by = OrderBy(column.value, descending)
        limit = None
        if self._at_word("limit"):
            self._advance()
            count = self._advance()
            if count.kind != "number" or "." in count.value:
                raise SqlSyntaxError("LIMIT expects an integer")
            limit = int(count.value)
            if limit < 0:
                raise SqlSyntaxError("LIMIT must be non-negative")
        tail = self._peek()
        if tail.kind != "eof":
            raise SqlSyntaxError(f"unexpected trailing token {tail.value!r}")
        statement = SelectStatement(
            columns=columns,
            table=table,
            where=where,
            order_by=order_by,
            limit=limit,
            group_by=group_by,
            having=having,
        )
        self._validate_grouping(statement)
        return statement

    def _parse_having_condition(self):
        from repro.query.ast import HavingCondition

        token = self._advance()
        if token.kind != "word" or token.value.lower() not in _AGGREGATES:
            raise SqlSyntaxError("HAVING expects an aggregate function")
        aggregate = self._parse_aggregate(token.value.lower())
        op = self._advance()
        if op.kind != "op":
            raise SqlSyntaxError("HAVING expects a comparison operator")
        value = self._parse_value()
        return HavingCondition(aggregate, "!=" if op.value == "<>" else op.value, value)

    @staticmethod
    def _validate_grouping(statement: SelectStatement) -> None:
        if statement.group_by and not statement.has_aggregates:
            raise UnsupportedSqlError("GROUP BY requires aggregate projections")
        if statement.having and not (statement.group_by or statement.has_aggregates):
            raise UnsupportedSqlError("HAVING requires GROUP BY or aggregates")
        if statement.has_aggregates:
            for item in statement.columns:
                if isinstance(item, str) and item not in statement.group_by:
                    raise UnsupportedSqlError(
                        f"non-aggregated column {item!r} must appear in GROUP BY"
                    )

    def _parse_projection(self) -> tuple:
        first = self._peek()
        if first.kind == "punct" and first.value == "*":
            self._advance()
            return ("*",)
        columns: list = []
        while True:
            columns.append(self._parse_projection_item())
            if self._peek().kind == "punct" and self._peek().value == ",":
                self._advance()
                continue
            break
        return tuple(columns)

    def _parse_projection_item(self):
        token = self._advance()
        if token.kind != "word":
            raise SqlSyntaxError(f"expected column name, got {token.value!r}")
        lowered = token.value.lower()
        if lowered in _AGGREGATES:
            return self._parse_aggregate(lowered)
        if lowered in _SCALAR_FUNCS:
            return self._parse_scalar_function(lowered)
        if lowered in _RESERVED_IN_PROJECTION:
            raise SqlSyntaxError(f"keyword {token.value!r} in projection")
        return token.value

    def _parse_aggregate(self, func: str) -> AggregateProjection:
        self._expect_punct("(")
        inner = self._advance()
        if inner.kind == "punct" and inner.value == "*":
            column = "*"
        elif inner.kind == "word":
            column = inner.value
        else:
            raise SqlSyntaxError(f"{func.upper()} expects a column or *")
        self._expect_punct(")")
        return AggregateProjection(func, column)

    def _parse_scalar_function(self, func: str) -> FunctionProjection:
        self._expect_punct("(")
        column = self._advance()
        if column.kind != "word":
            raise SqlSyntaxError(f"{func.upper()} expects a column name first")
        argument = None
        if self._peek().kind == "punct" and self._peek().value == ",":
            self._advance()
            argument = self._parse_value()
        self._expect_punct(")")
        if func == "ifnull" and argument is None:
            raise SqlSyntaxError("IFNULL requires a default value argument")
        return FunctionProjection(func, column.value, argument)

    def _parse_or(self):
        left = self._parse_and()
        children = [left]
        while self._at_word("or"):
            self._advance()
            children.append(self._parse_and())
        return children[0] if len(children) == 1 else OrNode(tuple(children))

    def _parse_and(self):
        left = self._parse_unary()
        children = [left]
        while self._at_word("and"):
            self._advance()
            children.append(self._parse_unary())
        return children[0] if len(children) == 1 else AndNode(tuple(children))

    def _parse_unary(self):
        if self._at_word("not"):
            self._advance()
            return NotNode(self._parse_unary())
        token = self._peek()
        if token.kind == "punct" and token.value == "(":
            self._advance()
            inner = self._parse_or()
            self._expect_punct(")")
            return inner
        return self._parse_predicate()

    def _parse_predicate(self):
        token = self._advance()
        if token.kind != "word":
            raise SqlSyntaxError(f"expected column or function, got {token.value!r}")
        name = token.value
        lowered = name.lower()
        if lowered == "match":
            return self._parse_match()
        if lowered == "attr":
            return self._parse_attr()
        return self._parse_column_predicate(name)

    def _parse_match(self):
        self._expect_punct("(")
        column = self._advance()
        if column.kind != "word":
            raise SqlSyntaxError("MATCH expects a column name")
        self._expect_punct(",")
        text = self._advance()
        if text.kind != "string":
            raise SqlSyntaxError("MATCH expects a quoted string")
        self._expect_punct(")")
        return MatchPredicate(column.value, _unquote(text.value))

    def _parse_attr(self):
        self._expect_punct("(")
        key = self._advance()
        if key.kind == "string":
            key_name = _unquote(key.value)
        elif key.kind == "word":
            key_name = key.value
        else:
            raise SqlSyntaxError("ATTR expects a sub-attribute name")
        self._expect_punct(")")
        op = self._advance()
        if op.kind != "op" or op.value not in ("=",):
            raise UnsupportedSqlError("ATTR only supports equality")
        value = self._parse_value()
        return SubAttributePredicate(key_name, str(value))

    def _parse_column_predicate(self, column: str):
        token = self._peek()
        if token.kind == "op":
            self._advance()
            op = "!=" if token.value == "<>" else token.value
            value = self._parse_value()
            return ComparisonPredicate(column, op, value)
        if self._at_word("between"):
            self._advance()
            low = self._parse_value()
            self._expect_word("and")
            high = self._parse_value()
            return BetweenPredicate(column, low, high)
        if self._at_word("in"):
            self._advance()
            self._expect_punct("(")
            values = [self._parse_value()]
            while self._peek().kind == "punct" and self._peek().value == ",":
                self._advance()
                values.append(self._parse_value())
            self._expect_punct(")")
            return InPredicate(column, tuple(values))
        if self._at_word("like"):
            self._advance()
            pattern = self._advance()
            if pattern.kind != "string":
                raise SqlSyntaxError("LIKE expects a quoted pattern")
            return LikePredicate(column, _unquote(pattern.value))
        if self._at_word("not"):
            self._advance()
            if self._at_word("in"):
                self._advance()
                self._expect_punct("(")
                values = [self._parse_value()]
                while self._peek().kind == "punct" and self._peek().value == ",":
                    self._advance()
                    values.append(self._parse_value())
                self._expect_punct(")")
                return NotNode(InPredicate(column, tuple(values)))
            if self._at_word("like"):
                self._advance()
                pattern = self._advance()
                if pattern.kind != "string":
                    raise SqlSyntaxError("NOT LIKE expects a quoted pattern")
                return NotNode(LikePredicate(column, _unquote(pattern.value)))
            raise UnsupportedSqlError("NOT must be followed by IN or LIKE here")
        raise SqlSyntaxError(f"expected operator after column {column!r}")

    def _parse_value(self) -> Any:
        token = self._advance()
        if token.kind == "number":
            return float(token.value) if "." in token.value else int(token.value)
        if token.kind == "string":
            text = _unquote(token.value)
            if _TIMESTAMP_RE.match(text):
                return timestamp_to_epoch(text)
            return text
        raise SqlSyntaxError(f"expected a value, got {token.value!r}")


def _unquote(quoted: str) -> str:
    return quoted[1:-1].replace("''", "'")


def parse_sql(sql: str) -> SelectStatement:
    """Parse *sql* into a :class:`SelectStatement`.

    Raises :class:`SqlSyntaxError` on malformed input and
    :class:`UnsupportedSqlError` for recognized-but-unsupported features.
    """
    if not sql or not sql.strip():
        raise SqlSyntaxError("empty SQL statement")
    return _Parser(sql.strip().rstrip(";")).parse()
