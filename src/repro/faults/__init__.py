"""repro.faults — deterministic fault injection and chaos testing.

Seed-driven chaos for the reproduction, in three layers:

* :class:`FaultPlan` / :class:`FaultEvent` — a declarative, reproducible
  schedule of faults (node crashes, partitions, slow replicas, translog
  corruption, clock skew, primary crashes, client-dispatch blackholes),
  either hand-built or generated from a seed;
* :class:`FaultInjector` — interprets events against a live
  :class:`~repro.esdb.ESDB` instance and knows how to *recover* each
  fault, including the consensus heal-time catch-up; backs the
  ``ESDB.inject_fault`` / ``ESDB.recover`` / ``ESDB.cat_faults`` API;
* :class:`ChaosRunner` — interleaves a plan with a seeded workload,
  tracks every acknowledged write, performs full recovery, and asserts
  the safety invariants (no acked write lost, rule lists converge,
  failover completes, nothing left blocked) into a :class:`ChaosReport`.

``python -m repro.faults`` runs a seeded scenario from the command line.
"""

from repro.faults.injector import ActiveFault, FaultInjector
from repro.faults.plan import FAULT_KINDS, ONE_SHOT_KINDS, FaultEvent, FaultPlan
from repro.faults.runner import ChaosConfig, ChaosReport, ChaosRunner

__all__ = [
    "FAULT_KINDS",
    "ONE_SHOT_KINDS",
    "ActiveFault",
    "ChaosConfig",
    "ChaosReport",
    "ChaosRunner",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
]
