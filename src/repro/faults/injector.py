"""Interprets fault events against a live ESDB instance.

The injector is the only piece of the chaos stack that knows how a fault
kind maps onto subsystem state: a ``crash_node`` touches the cluster node
*and* its consensus participant; recovering it must also run the heal-time
catch-up so a participant that missed commit broadcasts does not stay
blocked forever. Everything it does is reversible through :meth:`recover`
except the two one-shot kinds (``crash_primary``, ``corrupt_translog``),
which permanently change state and are validated by the post-recovery
invariants instead.

Every action is appended to :attr:`FaultInjector.log` (the data behind
``ESDB.cat_faults``) and counted in the ``faults_injected_total`` /
``faults_recovered_total`` metrics, which feed the ``faults.*`` dashboard
time series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import FaultInjectionError
from repro.faults.plan import FAULT_KINDS, ONE_SHOT_KINDS
from repro.storage.translog import TranslogEntry
from repro.telemetry.context import current_context

#: Fault kinds whose target is a shard id (fills the event log's shard
#: column); the rest target nodes or the whole cluster.
_SHARD_TARGETED = frozenset(
    {"slow_replica", "corrupt_translog", "crash_primary", "blackhole_dispatch"}
)


@dataclass
class ActiveFault:
    """One currently-injected, recoverable fault."""

    kind: str
    target: object
    params: Mapping
    injected_at: float
    undo: dict = field(default_factory=dict)  # saved state for recovery


class FaultInjector:
    """Applies and reverts fault kinds on an :class:`~repro.esdb.ESDB`."""

    def __init__(self, db, telemetry=None) -> None:
        self.db = db
        self.telemetry = telemetry if telemetry is not None else db.telemetry
        self.active: dict[tuple[str, object], ActiveFault] = {}
        #: (at, action, kind, target, detail) rows — the ``cat_faults`` data.
        self.log: list[tuple[float, str, str, object, str]] = []
        #: Shards whose client dispatch currently fails (``None`` = all).
        self.blackholed_shards: set = set()
        self.blackhole_all = False

    # -- injection ----------------------------------------------------------
    def inject(self, kind: str, target: object = None, at: float | None = None,
               **params) -> str:
        """Inject one fault; returns a human-readable detail string."""
        if kind not in FAULT_KINDS:
            raise FaultInjectionError(
                f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
            )
        key = (kind, target)
        if key in self.active:
            raise FaultInjectionError(f"fault {kind} on {target!r} already active")
        at = self.db.now if at is None else at
        handler = getattr(self, f"_inject_{kind}")
        undo: dict = {}
        detail = handler(target, undo, **params)
        if kind not in ONE_SHOT_KINDS:
            self.active[key] = ActiveFault(kind, target, dict(params), at, undo)
        self._count("faults_injected_total", kind)
        self.log.append((at, "inject", kind, target, detail))
        self._emit("fault_inject", at, kind, target)
        return detail

    def recover(self, kind: str | None = None, target: object = None,
                at: float | None = None) -> int:
        """Recover active faults matching *kind*/*target* (both None =
        everything). Returns the number of faults lifted."""
        at = self.db.now if at is None else at
        matched = [
            key for key, fault in self.active.items()
            if (kind is None or fault.kind == kind)
            and (target is None or fault.target == target)
        ]
        for key in matched:
            fault = self.active.pop(key)
            handler = getattr(self, f"_recover_{fault.kind}")
            detail = handler(fault.target, fault.undo)
            self._count("faults_recovered_total", fault.kind)
            self.log.append((at, "recover", fault.kind, fault.target, detail))
            self._emit("fault_recover", at, fault.kind, fault.target)
        return len(matched)

    def active_faults(self) -> list[ActiveFault]:
        return [self.active[key] for key in sorted(self.active, key=repr)]

    def dispatch_blackholed(self, shard_id: int) -> bool:
        return self.blackhole_all or shard_id in self.blackholed_shards

    def _count(self, name: str, kind: str) -> None:
        self.telemetry.metrics.counter(name, kind=kind).inc()

    def _emit(self, event_kind: str, at: float, fault_kind: str, target) -> None:
        """Mirror one log row into the instance's structured event log.

        Duck-typed so an injector built around a bare test double (no
        ``events`` attribute) keeps working; the shard column is filled
        only for shard-targeted fault kinds."""
        events = getattr(self.db, "events", None)
        if events is None:
            return
        shard = target if fault_kind in _SHARD_TARGETED else None
        events.emit(
            event_kind,
            at,
            shard=shard,
            trace_id=getattr(current_context(), "trace_id", None),
            fault=fault_kind,
            target=target,
        )

    def _participant(self, node_id: int):
        name = f"node-{node_id}"
        for participant in self.db.consensus.participants:
            if participant.name == name:
                return participant
        raise FaultInjectionError(f"no consensus participant named {name!r}")

    # -- crash_node ---------------------------------------------------------
    def _inject_crash_node(self, node_id, undo) -> str:
        self.db.cluster.fail_node(int(node_id))
        self._participant(int(node_id)).crash()
        return f"node-{node_id} down; consensus participant crashed"

    def _recover_crash_node(self, node_id, undo) -> str:
        self.db.cluster.restart_node(int(node_id))
        participant = self._participant(int(node_id))
        participant.recover()
        delivered = self.db.consensus.catch_up(participant)
        return f"node-{node_id} up; caught up {delivered} missed decision(s)/rule(s)"

    # -- partition_node -----------------------------------------------------
    def _inject_partition_node(self, node_id, undo) -> str:
        self._participant(int(node_id)).partition()
        return f"node-{node_id} isolated from consensus traffic"

    def _recover_partition_node(self, node_id, undo) -> str:
        participant = self._participant(int(node_id))
        participant.heal()
        delivered = self.db.consensus.catch_up(participant)
        return f"node-{node_id} healed; caught up {delivered} missed decision(s)/rule(s)"

    # -- slow_replica -------------------------------------------------------
    def _inject_slow_replica(self, shard_id, undo, seconds_per_byte: float = 1e-6) -> str:
        replica_set = self.db.replica_sets.get(shard_id)
        if replica_set is None:
            raise FaultInjectionError(f"shard {shard_id!r} has no replica set")
        undo["speeds"] = {}
        for name, replicator in replica_set.replicators.items():
            undo["speeds"][name] = replicator.network_seconds_per_byte
            replicator.network_seconds_per_byte = seconds_per_byte
        return (
            f"shard {shard_id}: {len(undo['speeds'])} replica(s) slowed to "
            f"{seconds_per_byte:g} s/byte"
        )

    def _recover_slow_replica(self, shard_id, undo) -> str:
        replica_set = self.db.replica_sets.get(shard_id)
        restored = 0
        if replica_set is not None:
            for name, speed in undo.get("speeds", {}).items():
                replicator = replica_set.replicators.get(name)
                if replicator is not None:
                    replicator.network_seconds_per_byte = speed
                    restored += 1
        return f"shard {shard_id}: {restored} replica(s) restored to full speed"

    # -- clock_skew ---------------------------------------------------------
    def _inject_clock_skew(self, node_id, undo, skew: float = 2.0) -> str:
        participant = self._participant(int(node_id))
        undo["skew"] = participant.clock.skew
        participant.clock.skew = skew
        return f"node-{node_id} clock skewed by {skew:+g}s"

    def _recover_clock_skew(self, node_id, undo) -> str:
        participant = self._participant(int(node_id))
        participant.clock.skew = undo.get("skew", 0.0)
        return f"node-{node_id} clock restored"

    # -- corrupt_translog (one-shot) ---------------------------------------
    def _inject_corrupt_translog(self, shard_id, undo, replica: str | None = None,
                                 entries: int = 1) -> str:
        replica_set = self.db.replica_sets.get(shard_id)
        if replica_set is None:
            raise FaultInjectionError(f"shard {shard_id!r} has no replica set")
        if not replica_set.replicators:
            raise FaultInjectionError(f"shard {shard_id!r} has no replicas left")
        if replica is None:
            replica = sorted(replica_set.replicators)[0]
        replicator = replica_set.replicators.get(replica)
        if replicator is None:
            raise FaultInjectionError(f"shard {shard_id!r} has no replica {replica!r}")
        log = replicator.replica_translog
        flipped = 0
        # Corrupt the tail *copies* only: the entry objects are shared with
        # the primary's translog, so mutating in place would corrupt the
        # primary too — a disk fault on one replica must stay on it.
        for index in range(max(0, len(log) - entries), len(log)):
            entry = log[index]
            log[index] = TranslogEntry(
                entry.sequence, entry.op, entry.doc_id, entry.source,
                entry.checksum ^ 0xFF,
            )
            flipped += 1
        return f"shard {shard_id}/{replica}: corrupted {flipped} tail entry(ies)"

    # -- crash_primary (one-shot) ------------------------------------------
    def _inject_crash_primary(self, shard_id, undo) -> str:
        replica_set = self.db.replica_sets.get(shard_id)
        if replica_set is None:
            raise FaultInjectionError(f"shard {shard_id!r} has no replica set")
        survivors = len(replica_set.replicators) - 1
        self.db.fail_primary(shard_id)
        return (
            f"shard {shard_id}: primary crashed; replica promoted, "
            f"{survivors} replica(s) re-homed"
        )

    # -- blackhole_dispatch -------------------------------------------------
    def _inject_blackhole_dispatch(self, shard_id, undo) -> str:
        if shard_id is None:
            self.blackhole_all = True
            return "client dispatch blackholed for every shard"
        self.blackholed_shards.add(shard_id)
        return f"client dispatch to shard {shard_id} blackholed"

    def _recover_blackhole_dispatch(self, shard_id, undo) -> str:
        if shard_id is None:
            self.blackhole_all = False
            return "client dispatch restored for every shard"
        self.blackholed_shards.discard(shard_id)
        return f"client dispatch to shard {shard_id} restored"
