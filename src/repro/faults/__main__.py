"""``python -m repro.faults`` — run a seeded chaos scenario.

Generates (or hand-assembles, with ``--scenario failover``) a fault plan,
drives it through a :class:`~repro.faults.runner.ChaosRunner`, prints the
plan, the fault log and the invariant report, and exits non-zero when any
post-recovery invariant is violated — the same contract the CI chaos-smoke
step relies on. ``--check-determinism`` runs the scenario twice and
verifies the two report fingerprints are identical.
"""

from __future__ import annotations

import argparse
import sys


def build_failover_plan(seed: int, steps: int, num_shards: int):
    """The canonical scenario: crash a primary mid-workload (forcing a
    replica promotion), crash + recover a node around it, and blackhole
    client dispatch long enough to exercise retry + dead-lettering."""
    from repro.faults import FaultPlan

    shard = seed % num_shards
    plan = FaultPlan(seed=seed)
    plan.add(steps // 5, "blackhole_dispatch", (shard + 1) % num_shards)
    plan.add(steps // 3, "crash_node", 1)
    plan.add(steps // 2, "crash_primary", shard)
    plan.add(steps // 2 + steps // 10, "corrupt_translog", (shard + 2) % num_shards)
    plan.add(2 * steps // 3, "crash_node", 1, recover=True)
    plan.add(3 * steps // 4, "blackhole_dispatch", (shard + 1) % num_shards,
             recover=True)
    return plan


#: The tenant that floods in the noisy-neighbor scenario.
FLOOD_TENANT = "tenant-flood"


def build_noisy_neighbor_plan(seed: int, steps: int, num_shards: int):
    """The noisy-neighbor scenario's (light) fault schedule: one dispatch
    blackhole + recovery while the flood runs, so governance is exercised
    together with — not instead of — an ordinary fault. The flood itself
    comes from ``ChaosConfig.flood_tenant`` / ``flood_factor``."""
    from repro.faults import FaultPlan

    shard = seed % num_shards
    plan = FaultPlan(seed=seed)
    plan.add(steps // 4, "blackhole_dispatch", shard)
    plan.add(steps // 2, "blackhole_dispatch", shard, recover=True)
    return plan


def noisy_neighbor_config(args) -> "object":
    """The governed ChaosConfig the noisy-neighbor scenario runs with."""
    from repro.faults import ChaosConfig
    from repro.tenancy import TenancyConfig

    return ChaosConfig(
        steps=args.steps,
        num_nodes=args.nodes,
        num_shards=args.shards,
        replicas_per_shard=args.replicas,
        flood_tenant=FLOOD_TENANT,
        flood_factor=args.flood_factor,
        tenancy=None if args.no_governance else TenancyConfig.strict(),
        exec_backend=args.exec,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Run a deterministic chaos scenario and check recovery invariants.",
    )
    parser.add_argument("--seed", type=int, default=0, help="plan + workload seed")
    parser.add_argument("--steps", type=int, default=400,
                        help="workload steps (default: 400)")
    parser.add_argument("--nodes", type=int, default=3, help="cluster nodes")
    parser.add_argument("--shards", type=int, default=8, help="shard count")
    parser.add_argument("--replicas", type=int, default=2, help="replicas per shard")
    parser.add_argument(
        "--scenario", choices=("failover", "random", "noisy-neighbor"),
        default="failover",
        help="'failover' = the canonical crash-primary scenario; "
             "'random' = a seed-generated schedule; "
             "'noisy-neighbor' = one tenant floods a governed cluster and "
             "must be throttled without any victim write being shed",
    )
    parser.add_argument(
        "--intensity", type=float, default=1.0,
        help="fraction of fault classes a random plan fires (default: 1.0)",
    )
    parser.add_argument(
        "--flood-factor", type=int, default=20,
        help="noisy-neighbor: extra flood-tenant writes per step (default: 20)",
    )
    parser.add_argument(
        "--no-governance", action="store_true",
        help="noisy-neighbor: run the same flood ungoverned (comparison runs; "
             "the isolation invariant is skipped)",
    )
    parser.add_argument(
        "--exec", choices=("serial", "threads"), default="serial",
        help="execution backend for the instance under chaos; fingerprints "
             "must not depend on the choice (default: serial)",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="drive the workload from a recorded trace file (v1 or v2, see "
             "python -m repro.workload.trace) instead of the built-in Zipf "
             "generator; the fault plan is scaled to the trace's length",
    )
    parser.add_argument(
        "--check-determinism", action="store_true",
        help="run the scenario twice and require identical report fingerprints",
    )
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the plan and fault log, print only the report")
    return parser


def _run(args):
    from repro.faults import ChaosConfig, ChaosRunner, FaultPlan

    steps = args.steps
    if args.trace is not None:
        # Scale the plan to the trace so every scheduled fault actually
        # fires inside the recorded workload.
        from repro.workload.trace import read_trace_events

        _, events = read_trace_events(args.trace)
        steps = max(sum(1 for _ in events), 10)
    if args.scenario == "noisy-neighbor":
        plan = build_noisy_neighbor_plan(args.seed, steps, args.shards)
        config = noisy_neighbor_config(args)
        if args.trace is not None:
            from dataclasses import replace

            config = replace(config, trace_path=args.trace)
    else:
        if args.scenario == "random":
            plan = FaultPlan.random(
                args.seed, steps, args.nodes, args.shards,
                intensity=args.intensity,
            )
        else:
            plan = build_failover_plan(args.seed, steps, args.shards)
        config = ChaosConfig(
            steps=steps,
            num_nodes=args.nodes,
            num_shards=args.shards,
            replicas_per_shard=args.replicas,
            exec_backend=args.exec,
            trace_path=args.trace,
        )
    runner = ChaosRunner(plan, config)
    report = runner.run()
    return plan, runner, report


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.steps < 10:
        parser.error("--steps must be >= 10")
    if args.replicas < 1:
        parser.error("--replicas must be >= 1 (chaos needs something to fail over to)")

    plan, runner, report = _run(args)
    if not args.quiet:
        print(plan.describe())
        print()
        print(runner.db.cat_faults().render())
        print()
        if runner.db.governor is not None:
            print(runner.db.cat_tenant_governance(k=8).render())
            print()
    print(report.render())

    if args.check_determinism:
        _, _, second = _run(args)
        if second.fingerprint() != report.fingerprint():
            print("!! determinism check FAILED: fingerprints differ")
            print(f"   first:  {report.fingerprint()}")
            print(f"   second: {second.fingerprint()}")
            return 1
        print(f"determinism check ok: {report.fingerprint()}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
