"""The chaos harness: interleave a seeded workload with a fault plan,
then prove the system healed.

:class:`ChaosRunner` owns a complete, physically replicated ESDB instance
plus a routing-aware :class:`~repro.client.WriteClient`, drives a
deterministic transaction-log workload through it step by step, fires the
plan's fault events at their scheduled steps, and records every write
whose dispatch was *acknowledged*. After the run it performs full
recovery (heal everything, consensus catch-up, dead-letter redrive, one
final replication round) and checks the safety invariants:

1. **No acknowledged write lost** — every acked document is readable from
   its shard with exactly the acknowledged source.
2. **Rule convergence** — every consensus participant's rule list equals
   the master's after catch-up.
3. **Nothing left blocked** — no participant still holds a dangling
   prepare or a stale ``blocked_after`` watermark.
4. **Failover completed** — every surviving replica set's primary is the
   shard's serving engine, and the dead-letter queue drained.

Same plan + same config ⇒ bit-identical :meth:`ChaosReport.fingerprint`,
so a failing seed is a complete, replayable bug report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    ConfigurationError,
    ConsensusAborted,
    EsdbError,
    FaultInjectionError,
    ReplicationError,
    TenantThrottledError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan


@dataclass(frozen=True)
class ChaosConfig:
    """Shape of one chaos run.

    Attributes:
        steps: workload steps (one submitted write per step).
        num_nodes / num_shards / replicas_per_shard: topology under test.
        num_tenants: tenant universe of the Zipf workload.
        flush_every: client flush cadence (steps).
        replicate_every: replication-round cadence (steps).
        propose_every: consensus rule-proposal cadence (0 = never) — keeps
            rounds in flight so node faults actually exercise the protocol.
        time_step: logical seconds per workload step.
        flood_tenant / flood_factor: the noisy-neighbor workload — when
            set, every step submits ``flood_factor`` extra writes pinned to
            ``flood_tenant`` on top of the ordinary Zipf write.
        tenancy: a :class:`~repro.tenancy.TenancyConfig` to govern the
            instance under chaos (None, the default, runs ungoverned and
            keeps historical fingerprints bit-identical).
        exec_backend: execution backend for the instance under chaos
            ("serial", the default, builds no worker pool and keeps
            historical fingerprints bit-identical; "threads" runs shard
            batches on a pool — every fingerprint quantity is
            deterministic, so serial and threads runs of the same plan
            must produce the same fingerprint).
        tracing: a :class:`~repro.telemetry.TraceConfig` for the instance
            under chaos (None uses the instance default). Fingerprints
            must be bit-identical whether tracing is on or off — trace-id
            allocation never touches the workload's RNG or clocks.
        slo: a :class:`~repro.slo.SloConfig` for the instance under chaos
            (None uses the instance default, i.e. disabled). Like tracing,
            SLO tracking observes the workload without touching its RNG or
            clocks, so fingerprints must be bit-identical on or off.
        trace_path: a recorded workload trace (v1 or v2, see
            :mod:`repro.workload.trace`) to drive the run instead of the
            built-in Zipf generator — one workload step per trace record,
            the logical clock following the recorded arrival timestamps.
            ``steps`` and ``time_step`` are ignored on trace runs (the
            trace supplies both count and clock); None (the default) keeps
            historical fingerprints bit-identical.
    """

    steps: int = 400
    num_nodes: int = 3
    num_shards: int = 8
    replicas_per_shard: int = 2
    num_tenants: int = 200
    flush_every: int = 16
    replicate_every: int = 64
    propose_every: int = 50
    time_step: float = 0.05
    flood_tenant: object | None = None
    flood_factor: int = 0
    tenancy: object | None = None
    exec_backend: str = "serial"
    tracing: object | None = None
    slo: object | None = None
    trace_path: str | None = None

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ConfigurationError("steps must be >= 1")
        if self.num_nodes < 1 or self.num_shards < 1 or self.num_tenants < 1:
            raise ConfigurationError(
                "num_nodes/num_shards/num_tenants must be >= 1"
            )
        if self.replicas_per_shard < 0:
            raise ConfigurationError("replicas_per_shard must be >= 0")
        if self.flush_every < 1 or self.replicate_every < 1:
            raise ConfigurationError("flush_every/replicate_every must be >= 1")
        if self.propose_every < 0:
            raise ConfigurationError("propose_every must be >= 0")
        if self.time_step <= 0:
            raise ConfigurationError("time_step must be positive")
        if self.flood_factor < 0:
            raise ConfigurationError("flood_factor must be >= 0")
        if self.flood_factor and self.flood_tenant is None:
            raise ConfigurationError("flood_factor needs a flood_tenant")
        from repro.exec import BACKENDS

        if self.exec_backend not in BACKENDS:
            raise ConfigurationError(
                f"exec_backend must be one of {BACKENDS}, got {self.exec_backend!r}"
            )


@dataclass
class ChaosReport:
    """Outcome of one chaos run — everything in it is deterministic for a
    given (plan, config): no wall-clock values, no unseeded randomness."""

    seed: int
    steps: int
    writes_submitted: int = 0
    writes_acked: int = 0
    writes_coalesced: int = 0
    dead_letters_redriven: int = 0
    faults_injected: int = 0
    faults_recovered: int = 0
    consensus_commits: int = 0
    consensus_aborts: int = 0
    replicate_errors: int = 0
    shard_docs: dict = field(default_factory=dict)
    violations: list = field(default_factory=list)
    governed: bool = False
    writes_throttled: int = 0
    throttled_by_tenant: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def fingerprint(self) -> str:
        """A stable digest of the run for same-seed reproducibility checks.

        The tenancy segment only appears on governed runs, so every
        historical ungoverned fingerprint stays bit-identical."""
        docs = ",".join(f"{sid}:{count}" for sid, count in sorted(self.shard_docs.items()))
        base = (
            f"seed={self.seed} steps={self.steps} acked={self.writes_acked} "
            f"coalesced={self.writes_coalesced} redriven={self.dead_letters_redriven} "
            f"faults={self.faults_injected}/{self.faults_recovered} "
            f"consensus={self.consensus_commits}/{self.consensus_aborts} "
            f"docs=[{docs}] violations={len(self.violations)}"
        )
        if self.governed:
            throttled = ",".join(
                f"{tenant}:{count}"
                for tenant, count in sorted(
                    self.throttled_by_tenant.items(), key=lambda kv: str(kv[0])
                )
            )
            base += f" throttled={self.writes_throttled}[{throttled}]"
        return base

    def render(self) -> str:
        lines = [
            f"chaos run: seed={self.seed} steps={self.steps} -> "
            f"{'OK' if self.ok else 'INVARIANT VIOLATIONS'}",
            f"  writes: {self.writes_submitted} submitted, {self.writes_acked} acked, "
            f"{self.writes_coalesced} coalesced, {self.dead_letters_redriven} redriven",
            f"  faults: {self.faults_injected} injected, {self.faults_recovered} recovered",
            f"  consensus: {self.consensus_commits} committed, "
            f"{self.consensus_aborts} aborted rounds",
            f"  replication: {self.replicate_errors} failed round(s)",
            "  docs/shard: "
            + ", ".join(f"{sid}={count}" for sid, count in sorted(self.shard_docs.items())),
        ]
        if self.governed:
            by_tenant = ", ".join(
                f"{tenant}={count}"
                for tenant, count in sorted(
                    self.throttled_by_tenant.items(), key=lambda kv: str(kv[0])
                )
            )
            lines.append(
                f"  tenancy: {self.writes_throttled} write(s) throttled"
                + (f" ({by_tenant})" if by_tenant else "")
            )
        for violation in self.violations:
            lines.append(f"  !! {violation}")
        return "\n".join(lines)


class ChaosRunner:
    """Drives one fault plan against a fresh, fully wired instance."""

    def __init__(self, plan: FaultPlan, config: ChaosConfig | None = None,
                 telemetry=None) -> None:
        from repro.client import WriteClient, WriteClientConfig
        from repro.cluster import ClusterTopology
        from repro.esdb import ESDB, EsdbConfig
        from repro.workload.generator import TransactionLogGenerator, WorkloadConfig

        self.plan = plan
        self.config = config or ChaosConfig()
        if self.config.replicas_per_shard < 1:
            raise ConfigurationError("chaos runs need at least one replica per shard")
        esdb_kwargs = {}
        if self.config.tenancy is not None:
            esdb_kwargs["tenancy"] = self.config.tenancy
        if self.config.exec_backend != "serial":
            from repro.exec import ExecConfig

            esdb_kwargs["exec"] = ExecConfig(backend=self.config.exec_backend)
        if self.config.tracing is not None:
            esdb_kwargs["tracing"] = self.config.tracing
        if self.config.slo is not None:
            esdb_kwargs["slo"] = self.config.slo
        self.db = ESDB(
            EsdbConfig(
                topology=ClusterTopology(
                    num_nodes=self.config.num_nodes,
                    num_shards=self.config.num_shards,
                    replicas_per_shard=self.config.replicas_per_shard,
                    seed=plan.seed,
                ),
                replication="physical",
                consensus_interval=1.0,
                auto_refresh_every=64,
                **esdb_kwargs,
            ),
            telemetry=telemetry,
        )
        self.injector = FaultInjector(self.db)
        self.db.faults = self.injector
        self.client = WriteClient(
            self.db.policy,
            self._dispatch,
            WriteClientConfig(
                batch_size=32,
                coalesce_window=1 << 30,  # the runner controls flush cadence
                dispatch_retries=2,
                backoff_base_seconds=0.0,  # logical time only: never sleep
            ),
            telemetry=self.db.telemetry,
        )
        self.generator = TransactionLogGenerator(
            WorkloadConfig(num_tenants=self.config.num_tenants, seed=plan.seed)
        )
        # A recorded trace replaces the generator: load it eagerly so a
        # malformed file fails construction, not step 137 of the run.
        self._trace_events: list[tuple[float, dict]] | None = None
        self._end_time = self.config.steps * self.config.time_step
        if self.config.trace_path is not None:
            from repro.workload.trace import read_trace_events

            info, events = read_trace_events(self.config.trace_path)
            self._trace_events = list(events)
            if not self._trace_events:
                raise ConfigurationError(
                    f"trace {self.config.trace_path} has no documents"
                )
            self._end_time = info.duration
        schema = self.db.config.schema
        self._id_field = schema.id_field
        self._tenant_field = schema.tenant_field
        self.acked: dict[object, dict] = {}
        self.report = ChaosReport(
            seed=plan.seed,
            steps=(
                len(self._trace_events)
                if self._trace_events is not None
                else self.config.steps
            ),
            governed=self.db.governor is not None,
        )

    # -- dispatch (the acknowledgement boundary) ---------------------------
    def _dispatch(self, shard_id: int, sources: list) -> None:
        if self.injector.dispatch_blackholed(shard_id):
            raise FaultInjectionError(f"dispatch to shard {shard_id} blackholed")
        result = self.db.bulk_write(sources)
        for item, source in zip(result.items, sources):
            if item.ok:
                # The write reached a primary and its translog: acknowledged.
                self.acked[source[self._id_field]] = dict(source)
            elif isinstance(item.error, TenantThrottledError):
                # A per-write admission-control rejection, not a shard
                # fault: the rest of the batch still lands, and the shed
                # write is deliberately NOT acknowledged (the no-acked-
                # write-lost invariant must not expect it back).
                self.report.writes_throttled += 1
                tenant = source[self._tenant_field]
                self.report.throttled_by_tenant[tenant] = (
                    self.report.throttled_by_tenant.get(tenant, 0) + 1
                )
            else:
                # A shard fault mid-batch: surface it to the client so
                # its retry/dead-letter machinery sees the dispatch fail.
                raise item.error

    # -- the run ------------------------------------------------------------
    def run(self) -> ChaosReport:
        """Workload + faults, then full recovery and invariant checks."""
        config = self.config
        for step, (now, doc) in enumerate(self._steps()):
            self.db.advance_clock(now)
            for event in self.plan.events_at(step):
                self._apply(event, now)
            self.client.submit(doc)
            self.report.writes_submitted += 1
            for _ in range(config.flood_factor):
                flood_doc = self.generator.generate(
                    created_time=now, tenant_id=config.flood_tenant
                )
                self.client.submit(flood_doc)
                self.report.writes_submitted += 1
            if (step + 1) % config.flush_every == 0:
                self.client.flush()
            if (step + 1) % config.replicate_every == 0:
                self._replicate(now)
            if config.propose_every and (step + 1) % config.propose_every == 0:
                self._propose(step, now)
        self.recover()
        self.report.writes_acked = len(self.acked)
        self.report.writes_coalesced = self.client.stats["coalesced"]
        self.report.shard_docs = {
            sid: engine.total_docs_including_buffer()
            for sid, engine in sorted(self.db.engines.items())
        }
        self.report.violations = self.check_invariants()
        return self.report

    def _steps(self):
        """Yield ``(now, document)`` per workload step — from the recorded
        trace when configured, else the built-in Zipf generator on the
        fixed ``time_step`` grid."""
        if self._trace_events is not None:
            for now, doc in self._trace_events:
                yield now, dict(doc)
            return
        for step in range(self.config.steps):
            now = step * self.config.time_step
            yield now, self.generator.generate(created_time=now)

    def _apply(self, event, now: float) -> None:
        if event.recover:
            self.report.faults_recovered += self.injector.recover(
                event.kind, event.target, at=now
            )
            return
        try:
            self.injector.inject(event.kind, event.target, at=now, **dict(event.params))
            self.report.faults_injected += 1
        except FaultInjectionError as exc:
            # e.g. crash_primary on a shard whose set already dissolved —
            # the plan is seed-generated and may race its own faults.
            self.injector.log.append((now, "skip", event.kind, event.target, str(exc)))

    def _replicate(self, now: float) -> None:
        try:
            self.db.replicate(now)
        except (ReplicationError, EsdbError):
            self.report.replicate_errors += 1

    def _propose(self, step: int, now: float) -> None:
        from repro.consensus import RuleProposal

        try:
            self.db.consensus.propose(
                RuleProposal("chaos", f"chaos-tenant-{step}", 2), now
            )
            self.report.consensus_commits += 1
        except ConsensusAborted:
            self.report.consensus_aborts += 1

    # -- recovery -----------------------------------------------------------
    def recover(self) -> None:
        """Heal every fault and drain every retry path."""
        now = self._end_time
        self.db.advance_clock(now)
        self.client.flush()  # may dead-letter against still-active blackholes
        self.report.faults_recovered += self.injector.recover(at=now)
        self.db.consensus.catch_up_all()
        self.report.dead_letters_redriven = self.client.redrive_dead_letters()
        self.client.flush()
        self._replicate(now)
        self.db.refresh()

    # -- invariants ----------------------------------------------------------
    def check_invariants(self) -> list[str]:
        violations: list[str] = []
        db = self.db
        lost = 0
        mismatched = 0
        for doc_id, source in self.acked.items():
            shard_id = db._doc_shard.get(doc_id)
            if shard_id is None or not db.engines[shard_id].contains(doc_id):
                lost += 1
                continue
            if db.engines[shard_id].get(doc_id).source != source:
                mismatched += 1
        if lost:
            violations.append(f"{lost} acknowledged write(s) lost after recovery")
        if mismatched:
            violations.append(
                f"{mismatched} acknowledged write(s) readable with stale source"
            )
        master_rules = db.consensus.rules.snapshot()
        for participant in db.consensus.participants:
            if not participant.reachable:
                violations.append(f"{participant.name} left crashed/partitioned")
                continue
            if participant.rules.snapshot() != master_rules:
                violations.append(
                    f"{participant.name} rule list diverges from the master"
                )
            if participant.blocked_after is not None or participant.pending_round():
                violations.append(
                    f"{participant.name} still blocked after recovery "
                    f"(blocked_after={participant.blocked_after}, "
                    f"pending={participant.pending_round()})"
                )
        for shard_id, replica_set in db.replica_sets.items():
            if replica_set.primary is not db.engines[shard_id]:
                violations.append(
                    f"shard {shard_id}: replica set primary is not the serving engine"
                )
        if self.client.dead_letter_count():
            violations.append(
                f"{self.client.dead_letter_count()} write(s) stuck in the "
                "dead-letter queue after redrive"
            )
        # Noisy-neighbor isolation: with governance on and a flooding
        # tenant configured, only the flood tenant may ever be shed, and
        # the flood must actually have been throttled (the governor did
        # its job). Victims losing writes to someone else's flood is the
        # exact failure mode this subsystem exists to prevent.
        if db.governor is not None and self.config.flood_tenant is not None:
            flood = self.config.flood_tenant
            victims = {
                tenant: count
                for tenant, count in self.report.throttled_by_tenant.items()
                if tenant != flood
            }
            if victims:
                detail = ", ".join(
                    f"{tenant}={count}"
                    for tenant, count in sorted(
                        victims.items(), key=lambda kv: str(kv[0])
                    )
                )
                violations.append(
                    f"victim tenant write(s) shed under governance: {detail}"
                )
            if self.config.flood_factor and not self.report.throttled_by_tenant.get(
                flood
            ):
                violations.append(
                    f"flood tenant {flood!r} was never throttled despite flooding"
                )
        return violations
