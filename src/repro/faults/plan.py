"""Deterministic, seed-driven fault plans.

A :class:`FaultPlan` is a declarative schedule: *at workload step N, do
fault X to target Y*. Plans are either built explicitly (one line per
event) or generated from a seed by :meth:`FaultPlan.random` — the same
seed always yields the same schedule, which is what makes a chaos run
replayable: re-running a failing seed reproduces the exact interleaving
of crashes, partitions, corruptions and recoveries that broke an
invariant (the FoundationDB-style simulation discipline).

Plans know nothing about the database; :class:`~repro.faults.injector.
FaultInjector` interprets the events against a live ESDB instance and
:class:`~repro.faults.runner.ChaosRunner` interleaves them with a
workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import FaultInjectionError

#: Every fault kind an injector understands. ``*_node`` faults target a
#: node id, shard-level faults target a shard id; ``crash_primary`` and
#: ``corrupt_translog`` are one-shot (no paired recovery), the rest stay
#: active until recovered.
FAULT_KINDS = (
    "crash_node",  # node fails: drops out of the cluster and consensus
    "partition_node",  # node isolated from consensus traffic
    "slow_replica",  # shard's replicas pay a per-byte network cost
    "clock_skew",  # node's consensus clock jumps by `skew` seconds
    "corrupt_translog",  # flip checksums on a replica's translog tail
    "crash_primary",  # kill a shard's primary: forces replica promotion
    "blackhole_dispatch",  # client dispatch to a shard fails (retry/DLQ path)
)

#: Kinds that fire once and have nothing to recover.
ONE_SHOT_KINDS = frozenset({"crash_primary", "corrupt_translog"})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault action.

    Attributes:
        at_step: workload step the event fires before.
        kind: one of :data:`FAULT_KINDS`.
        target: node id / shard id the fault applies to (kind-dependent).
        params: extra keyword arguments for the injector.
        recover: True when this event *lifts* a previously injected fault
            of the same (kind, target) instead of injecting one.
    """

    at_step: int
    kind: str
    target: object = None
    params: Mapping = field(default_factory=dict)
    recover: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultInjectionError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.at_step < 0:
            raise FaultInjectionError("at_step must be >= 0")
        if self.recover and self.kind in ONE_SHOT_KINDS:
            raise FaultInjectionError(f"{self.kind} is one-shot; it cannot be recovered")

    def describe(self) -> str:
        action = "recover" if self.recover else "inject"
        extra = "".join(
            f" {key}={value}" for key, value in sorted(self.params.items())
        )
        return f"step {self.at_step:>5}: {action} {self.kind} target={self.target}{extra}"


class FaultPlan:
    """An ordered fault schedule plus the seed that (optionally) built it."""

    def __init__(self, seed: int = 0, events: Iterable[FaultEvent] = ()) -> None:
        self.seed = seed
        self.events: list[FaultEvent] = sorted(events, key=lambda e: e.at_step)

    # -- construction -------------------------------------------------------
    def add(self, at_step: int, kind: str, target: object = None,
            recover: bool = False, **params) -> "FaultPlan":
        """Append one event (chainable)."""
        self.events.append(FaultEvent(at_step, kind, target, dict(params), recover))
        self.events.sort(key=lambda e: e.at_step)
        return self

    @classmethod
    def random(
        cls,
        seed: int,
        steps: int,
        num_nodes: int,
        num_shards: int,
        intensity: float = 1.0,
    ) -> "FaultPlan":
        """Generate a reproducible schedule from *seed*.

        Each enabled fault class gets one inject/recover pair (or one-shot
        firing) at seeded positions inside the run; *intensity* scales how
        many classes fire (1.0 = all of them). Node 0 is never crashed or
        partitioned so consensus always keeps a reachable master-side
        quorum participant to catch the others up from.
        """
        if steps < 10:
            raise FaultInjectionError("a random plan needs at least 10 steps")
        if not 0.0 <= intensity <= 1.0:
            raise FaultInjectionError("intensity must be in [0, 1]")
        rng = random.Random(seed)
        plan = cls(seed=seed)

        def window(lo_frac: float, hi_frac: float) -> int:
            lo = max(1, int(steps * lo_frac))
            hi = max(lo + 1, int(steps * hi_frac))
            return rng.randrange(lo, hi)

        candidates = []
        if num_nodes > 1:
            victim = rng.randrange(1, num_nodes)
            candidates.append(("crash_node", victim, {}))
            other = rng.randrange(1, num_nodes)
            candidates.append(("partition_node", other, {}))
            candidates.append(
                ("clock_skew", rng.randrange(num_nodes), {"skew": rng.uniform(0.5, 3.0)})
            )
        shard = rng.randrange(num_shards)
        candidates.append(
            ("slow_replica", shard, {"seconds_per_byte": rng.uniform(1e-7, 1e-5)})
        )
        candidates.append(("corrupt_translog", rng.randrange(num_shards), {"entries": 1}))
        candidates.append(("crash_primary", rng.randrange(num_shards), {}))
        candidates.append(("blackhole_dispatch", rng.randrange(num_shards), {}))

        keep = max(1, round(len(candidates) * intensity))
        for kind, target, params in candidates[:keep]:
            start = window(0.15, 0.55)
            plan.add(start, kind, target, **params)
            if kind not in ONE_SHOT_KINDS:
                plan.add(window(0.60, 0.90), kind, target, recover=True)
        return plan

    # -- access -------------------------------------------------------------
    def events_at(self, step: int) -> list[FaultEvent]:
        return [event for event in self.events if event.at_step == step]

    def kinds(self) -> set[str]:
        return {event.kind for event in self.events}

    def last_step(self) -> int:
        return self.events[-1].at_step if self.events else 0

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def describe(self) -> str:
        lines = [f"fault plan: seed={self.seed}, {len(self.events)} event(s)"]
        lines.extend(f"  {event.describe()}" for event in self.events)
        return "\n".join(lines)
