"""The ESDB facade: a complete, queryable multi-tenant database instance.

Glues together every subsystem into the end-to-end path a user of the real
system would see:

* a :class:`~repro.cluster.Cluster` topology with one
  :class:`~repro.storage.engine.ShardEngine` per primary shard;
* a routing policy (dynamic secondary hashing by default) shared by the
  write and query clients;
* the workload monitor + load balancer + consensus loop that commits new
  secondary hashing rules as hotspots emerge;
* SQL execution: parse → Xdriver4ES → per-shard RBO plan → execute →
  coordinator aggregation.

This facade favours clarity over throughput — the performance experiments
use :mod:`repro.sim`; this class is the *functional* system behind the
examples and the query-side benchmarks (Figures 16–18).
"""

from __future__ import annotations

import itertools
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.balancer import BalancerConfig, LoadBalancer, WorkloadMonitor
from repro.cache import (
    CacheConfig,
    CoordinatorResultCache,
    ShardRequestCache,
    sql_fingerprint,
    statement_fingerprint,
)
from repro.cluster import Cluster, ClusterTopology
from repro.indexing import FrequencyTracker
from repro.obsv import Observer, ObsvConfig
from repro.obsv import runtime as obsv_runtime
from repro.obsv.cat import (
    CatTable,
    cat_caches,
    cat_events,
    cat_exec,
    cat_faults,
    cat_hotkeys,
    cat_nodes,
    cat_rules,
    cat_shards,
    cat_slo,
    cat_tenants,
    cat_timeseries,
)
from repro.obsv.dashboard import cluster_snapshot, render_dashboard
from repro.consensus import ConsensusConfig, ConsensusMaster, Participant, RuleProposal
from repro.errors import (
    ConsensusAborted,
    EsdbError,
    QueryError,
    TenantThrottledError,
)
from repro.exec import BulkItemResult, BulkResult, ExecConfig, ShardExecutor
from repro.exec import execute_batch as _shared_execute_batch
from repro.query import (
    QueryExecutor,
    ResultAggregator,
    RuleBasedOptimizer,
    Xdriver4ES,
    parse_sql,
)
from repro.query.aggregator import QueryResult
from repro.query.ast import (
    ComparisonPredicate,
    SelectStatement,
    SubAttributePredicate,
    iter_predicates,
)
from repro.query.optimizer import CatalogInfo
from repro.routing import (
    DynamicSecondaryHashRouting,
    RoutingPolicy,
)
from repro.slo import HeavyHitterProfiler, SloConfig, SloEngine
from repro.storage import EngineConfig, Schema, ShardEngine
from repro.telemetry import (
    NULL_TELEMETRY,
    EventLog,
    Span,
    Telemetry,
    TraceConfig,
    TraceContext,
    TraceIdGenerator,
    Tracer,
    build_sampler,
    current_context,
)
from repro.tenancy import (
    TenancyConfig,
    TenantGovernor,
    cat_tenant_governance,
    doc_bytes,
)
from repro.telemetry.runtime import default_telemetry
from repro.telemetry.timeseries import (
    DASHBOARD_SERIES,
    TimeSeriesStore,
    install_esdb_derivations,
    sparkline,
)

if TYPE_CHECKING:
    from repro.replication import ReplicaSet

#: Distinguishes instances sharing one registry (profiling runs).
_INSTANCE_IDS = itertools.count()


@dataclass(frozen=True)
class EsdbConfig:
    """Configuration of one ESDB instance.

    Attributes:
        topology: cluster layout (nodes / shards / replicas).
        schema: document schema (defaults to the transaction-log template).
        composite_columns: composite indexes built on every shard.
        scan_columns: the sequential-scan list.
        indexed_subattributes: frequency-based indexing selection (None =
            index everything).
        optimizer_enabled: toggle for the Figure-17 comparison.
        balancer: hotspot thresholds for the load balancer.
        consensus_interval: effective-time lag T for rule commits.
        replication: None (no replica copies, the default for tests) or
            "physical" — maintain a :class:`~repro.replication.ReplicaSet`
            per shard (§5.2) with ``topology.replicas_per_shard`` copies,
            enabling :meth:`ESDB.replicate` and :meth:`ESDB.fail_primary`.
        telemetry_enabled: collect metrics and traces for this instance
            (default). With False the instance runs on the no-op telemetry
            singletons — near-zero overhead, empty :meth:`ESDB.stats_report`
            counters.
        cache: the three query-cache levels (:mod:`repro.cache`): per-shard
            segment filter cache, shard request cache, coordinator result
            cache. Each level is individually disableable and byte-budgeted;
            ``CacheConfig.off()`` is the caches-off baseline.
        obsv: the observability layer (:mod:`repro.obsv`): index/search
            slow logs, rolling-window skew analytics with hot-tenant /
            hot-shard alerts, and the ``_cat`` / dashboard surfaces.
            ``ObsvConfig.off()`` removes the observer; the write path then
            pays one ``is not None`` check.
        timeseries_enabled / timeseries_interval / timeseries_capacity:
            performance history (:mod:`repro.telemetry.timeseries`): a
            :class:`~repro.telemetry.timeseries.TimeSeriesStore` samples
            the metrics registry every ``timeseries_interval`` seconds of
            the instance's *logical* clock into ring buffers of
            ``timeseries_capacity`` samples per series — the data behind
            the dashboard sparklines and ``cat_timeseries``. Disabling it
            removes the store; the write path then pays one ``is not
            None`` check.
        tenancy: multi-tenant resource governance (:mod:`repro.tenancy`):
            per-tenant token-bucket rate limits, QoS classes with a
            weighted admission queue, tumbling byte/operation quotas, and
            backpressure with structured shed-load errors. Disabled by
            default — the instance then builds no governor and every path
            is byte-identical to an ungoverned instance.
        exec: the concurrent execution core (:mod:`repro.exec`). The
            default ``serial`` backend builds no executor object and keeps
            every write/query path byte-identical to the single-threaded
            instance (chaos fingerprints included). ``ExecConfig.threads()``
            runs per-shard bulk batches and query scatter-gather on a
            worker pool with deterministic (shard-id-ordered) merges, and
            enables SharedDB-style query coalescing in
            :meth:`ESDB.execute_batch`.
        tracing: request-scoped distributed tracing
            (:mod:`repro.telemetry.context`). Enabled by default: every
            top-level operation gets a deterministic seed-derived
            W3C-shaped trace id, propagated across executor workers, with
            head-based sampling (``always`` / ``ratio`` / ``slow-tail``),
            trace-id exemplars on latency histograms, and a structured
            event log behind :meth:`ESDB.cat_events` and
            :meth:`ESDB.diagnostics_bundle`. ``TraceConfig.off()``
            restores the pre-trace span trees bit-for-bit.
        slo: service-level objectives and heavy-hitter attribution
            (:mod:`repro.slo`). Disabled by default — the instance then
            builds neither the :class:`~repro.slo.SloEngine` nor the
            :class:`~repro.slo.HeavyHitterProfiler` and every path is
            byte-identical (chaos fingerprints included). Enabled, write
            and query outcomes are classified against declarative
            latency/error-rate objectives with multi-window burn-rate
            alerting (``slo_burn``/``slo_recovered`` events), and bounded
            Space-Saving sketches name the hot routing keys, filter terms
            and query fingerprints per shard and per tenant
            (:meth:`ESDB.cat_slo` / :meth:`ESDB.cat_hotkeys`).
    """

    topology: ClusterTopology = field(default_factory=ClusterTopology)
    schema: Schema = field(default_factory=Schema.transaction_logs)
    composite_columns: tuple = (("tenant_id", "created_time"),)
    scan_columns: frozenset = frozenset({"status", "quantity"})
    indexed_subattributes: frozenset | None = None
    optimizer_enabled: bool = True
    balancer: BalancerConfig = field(default_factory=BalancerConfig)
    consensus_interval: float = 5.0
    auto_refresh_every: int | None = 1024
    replication: str | None = None
    telemetry_enabled: bool = True
    cache: CacheConfig = field(default_factory=CacheConfig)
    obsv: ObsvConfig = field(default_factory=ObsvConfig)
    timeseries_enabled: bool = True
    timeseries_interval: float = 1.0
    timeseries_capacity: int = 240
    tenancy: TenancyConfig = field(default_factory=TenancyConfig)
    exec: ExecConfig = field(default_factory=ExecConfig)
    tracing: TraceConfig = field(default_factory=TraceConfig)
    slo: SloConfig = field(default_factory=SloConfig)


class ESDB:
    """A single-process, fully functional ESDB instance."""

    def __init__(
        self,
        config: EsdbConfig | None = None,
        policy: RoutingPolicy | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.config = config or EsdbConfig()
        if telemetry is None:
            telemetry = default_telemetry()
        if telemetry is None:
            telemetry = Telemetry() if self.config.telemetry_enabled else NULL_TELEMETRY
        self.telemetry = telemetry
        self.instance = f"esdb{next(_INSTANCE_IDS)}"
        tracing = self.config.tracing
        self.trace_ids: TraceIdGenerator | None = None
        self.trace_sampler = None
        if tracing.enabled:
            trace_seed = (
                tracing.seed if tracing.seed is not None else self.config.topology.seed
            )
            self.trace_ids = TraceIdGenerator(trace_seed)
            self.trace_sampler = build_sampler(tracing)
        #: Structured operational event log (always present; emission sites
        #: stamp the active trace id when tracing is on).
        self.events = EventLog(capacity=tracing.events_capacity)
        self.cluster = Cluster(self.config.topology)
        self.policy = policy or DynamicSecondaryHashRouting(self.cluster.num_shards)
        if self.policy.num_shards != self.cluster.num_shards:
            raise EsdbError(
                "routing policy shard count does not match cluster topology"
            )
        self.policy.instrument(self.telemetry)
        cache_config = self.config.cache
        engine_config = EngineConfig(
            schema=self.config.schema,
            composite_columns=self.config.composite_columns,
            scan_columns=self.config.scan_columns,
            indexed_subattributes=self.config.indexed_subattributes,
            auto_refresh_every=self.config.auto_refresh_every,
            filter_cache_bytes=(
                cache_config.filter_cache_bytes
                if cache_config.filter_cache_enabled
                else None
            ),
        )
        self.engines: dict[int, ShardEngine] = {
            shard.shard_id: ShardEngine(
                engine_config, shard_id=shard.shard_id, telemetry=self.telemetry
            )
            for shard in self.cluster.shards
        }
        self.request_cache: ShardRequestCache | None = None
        if cache_config.request_cache_enabled:
            self.request_cache = ShardRequestCache(
                cache_config.request_cache_bytes, metrics=self.telemetry.metrics
            )
            for engine in self.engines.values():
                self.request_cache.attach(engine)
        self.result_cache: CoordinatorResultCache | None = None
        if cache_config.result_cache_enabled:
            self.result_cache = CoordinatorResultCache(
                cache_config.result_cache_bytes, metrics=self.telemetry.metrics
            )
        self._catalog = CatalogInfo(
            schema=self.config.schema,
            composite_indexes=self.config.composite_columns,
            scan_columns=self.config.scan_columns,
            indexed_subattributes=self.config.indexed_subattributes,
        )
        self.xdriver = Xdriver4ES()
        self.optimizer = RuleBasedOptimizer(
            self._catalog,
            enabled=self.config.optimizer_enabled,
            telemetry=self.telemetry,
        )
        self.monitor = WorkloadMonitor(
            registry=self.telemetry.metrics, labels={"instance": self.instance}
        )
        self.balancer = LoadBalancer(
            self.monitor, self.cluster.num_shards, self.config.balancer
        )
        participants = [Participant(n.name) for n in self.cluster.nodes]
        self.consensus = ConsensusMaster(
            participants,
            ConsensusConfig(effective_interval=self.config.consensus_interval),
            telemetry=self.telemetry,
        )
        self.obsv: Observer | None = None
        if self.config.obsv.enabled:
            self.obsv = Observer(
                self.config.obsv,
                num_shards=self.cluster.num_shards,
                metrics=self.telemetry.metrics if self.telemetry.enabled else None,
                window_seconds=self.config.obsv.window_seconds
                or self.monitor.window_seconds,
            )
            obsv_runtime.register(self)
        self.timeseries: TimeSeriesStore | None = None
        if self.config.timeseries_enabled:
            # Works against the no-op registry too: the null registry has
            # no metric names, so sampling rounds simply record no series.
            self.timeseries = install_esdb_derivations(
                TimeSeriesStore(
                    self.telemetry.metrics,
                    interval=self.config.timeseries_interval,
                    capacity=self.config.timeseries_capacity,
                )
            )
        self.governor: TenantGovernor | None = None
        #: sql text -> target tenant, memoized for admission (the tenant of a
        #: SQL string is a pure function of the text, so repeat queries —
        #: the result-cache hot path — skip the probe parse entirely).
        #: LRU-bounded: at capacity the stalest probe is evicted, never the
        #: whole map — a hot result-cache path keeps its memoized tenants.
        self._query_tenant_cache: OrderedDict[str, object] = OrderedDict()
        #: query fingerprint -> sub-attribute names it filters on. A result-
        #: cache hit skips the fan-out (where frequencies are normally
        #: recorded), but the cached query is still real demand — without
        #: this memo, repeat queries would never count toward adaptive
        #: sub-attribute index selection. Same LRU bound as above.
        self._subattr_by_fingerprint: OrderedDict[str, tuple] = OrderedDict()
        if self.config.tenancy.enabled:
            self.governor = TenantGovernor(
                self.config.tenancy,
                metrics=self.telemetry.metrics if self.telemetry.enabled else None,
            )
        self.executor: ShardExecutor | None = None
        if self.config.exec.enabled:
            self.executor = ShardExecutor(
                self.config.exec,
                metrics=self.telemetry.metrics if self.telemetry.enabled else None,
            )
        self.slo: SloEngine | None = None
        self.hotkeys: HeavyHitterProfiler | None = None
        if self.config.slo.enabled:
            slo_metrics = self.telemetry.metrics if self.telemetry.enabled else None
            self.slo = SloEngine(self.config.slo, metrics=slo_metrics)
            if self.config.slo.profiler_enabled:
                self.hotkeys = HeavyHitterProfiler(
                    self.config.slo, metrics=slo_metrics
                )
                if self.obsv is not None:
                    # Skew alerts get upgraded with the hitters behind them.
                    self.obsv.attributor = self._slo_attribution
        self._doc_shard: dict[object, int] = {}
        self._clock = 0.0
        #: Lazily created FaultInjector (see :meth:`inject_fault`).
        self.faults = None
        self._subattr_frequencies = FrequencyTracker()
        self.replica_sets: dict[int, ReplicaSet] = {}
        if self.config.replication is not None:
            if self.config.replication != "physical":
                raise EsdbError(
                    f"unsupported replication mode {self.config.replication!r}"
                )
            from repro.replication import ReplicaSet

            copies = max(self.config.topology.replicas_per_shard, 1)
            self.replica_sets = {
                shard_id: ReplicaSet(
                    engine, num_replicas=copies, telemetry=self.telemetry
                )
                for shard_id, engine in self.engines.items()
            }

    # -- time ----------------------------------------------------------------
    def advance_clock(self, now: float) -> None:
        """Move the instance's logical clock forward (monotone)."""
        self._clock = max(self._clock, now)

    @property
    def now(self) -> float:
        return self._clock

    # -- tracing -----------------------------------------------------------------
    def _new_trace(self, op: str) -> TraceContext | None:
        """A fresh deterministic trace context for one top-level *op*, or
        None with tracing disabled (span trees then match the pre-trace
        era bit-for-bit, chaos fingerprints included)."""
        if self.trace_ids is None:
            return None
        return self.trace_ids.next_context(op)

    def _emit_event(
        self,
        kind: str,
        tenant: object | None = None,
        shard: int | None = None,
        ctx: TraceContext | None = None,
        **detail,
    ) -> None:
        """Record one operational event at the instance's logical clock,
        stamped with *ctx*'s trace id (falling back to the thread's active
        context, so callees deep in a traced operation attribute right)."""
        if ctx is None:
            ctx = current_context()
        self.events.emit(
            kind,
            self._clock,
            tenant=str(tenant) if tenant is not None else None,
            shard=shard,
            trace_id=ctx.trace_id if ctx is not None else None,
            **detail,
        )

    def trace(self, trace_id: str) -> Span | None:
        """Look up a finished trace by id over the tracer's retained ring:
        alert → slow-log line (``trace=...``) → full span tree."""
        return self.telemetry.tracer.find_trace(trace_id)

    # -- write path ------------------------------------------------------------
    def write(self, source: Mapping[str, Any]) -> int:
        """Route and execute one document write; returns the shard id.

        Traced client → router (rule-list lookup) → shard engine; the shard
        id and routing policy land in the span tags, and per-shard write
        counters plus a latency histogram land in the metrics registry.

        With governance enabled (``EsdbConfig.tenancy``), the write first
        passes tenant admission control and may raise
        :class:`~repro.errors.TenantThrottledError` instead of indexing.
        """
        telemetry = self.telemetry
        tracer = telemetry.tracer
        ctx = self._new_trace("write")
        with tracer.trace("write", ctx, sampler=self.trace_sampler) as span:
            schema = self.config.schema
            tenant_id = source[schema.tenant_field]
            doc_id = source[schema.id_field]
            created_time = float(source[schema.time_field])
            self.advance_clock(created_time)
            if self.governor is not None:
                # Sizing a document costs a str() per field; only pay it
                # when an indexed-byte budget actually consumes the number.
                try:
                    self.governor.admit_write(
                        tenant_id,
                        self._clock,
                        doc_bytes(source)
                        if self.governor.config.indexed_bytes_quota is not None
                        else 0,
                    )
                except TenantThrottledError as exc:
                    self._emit_event(
                        "shed" if exc.budget == "queue" else "throttle",
                        tenant=tenant_id, ctx=ctx, op="write", budget=exc.budget,
                    )
                    if self.slo is not None:
                        self.slo.record(
                            "write", tenant_id, 0.0, self._clock, error=True
                        )
                        self._slo_tick(ctx)
                    raise
            with tracer.span("write.route", policy=self.policy.name):
                shard_id = self.policy.route_write(tenant_id, doc_id, created_time)
            with tracer.span("write.index", shard=shard_id):
                if shard_id in self.replica_sets:
                    self.replica_sets[shard_id].index(source)
                else:
                    self.engines[shard_id].index(source)
            self.cluster.shard(shard_id).record_write()
            self._doc_shard[doc_id] = shard_id
            self.monitor.record_write(tenant_id, self._clock)
            raw_attributes = source.get("attributes")
            if raw_attributes:
                from repro.storage.document import parse_attributes

                self._subattr_frequencies.record_write(
                    parse_attributes(str(raw_attributes)).keys()
                )
        metrics = telemetry.metrics
        exemplar = ctx.trace_id if ctx is not None and ctx.sampled else None
        metrics.counter("esdb_writes_total", shard=shard_id).inc()
        if telemetry.enabled:
            span.tags["shard"] = shard_id
            metrics.histogram("esdb_write_seconds").observe(
                span.duration, trace_id=exemplar
            )
        if self.obsv is not None:
            self.obsv.record_write(
                tenant_id,
                shard_id,
                span.duration,
                self._clock,
                trace=span if telemetry.enabled else None,
                trace_id=ctx.trace_id if ctx is not None else None,
            )
        if self.slo is not None:
            self.slo.record("write", tenant_id, span.duration, self._clock)
            if self.hotkeys is not None:
                self.hotkeys.record_write(tenant_id, shard_id, doc_id)
            self._slo_tick(ctx)
        if self.timeseries is not None:
            self.timeseries.maybe_sample(self._clock)
        return shard_id

    def bulk_write(
        self,
        sources: Iterable[Mapping[str, Any]],
        stop_on_error: bool = False,
    ) -> BulkResult:
        """The batched bulk-write path (Elasticsearch's ``_bulk``): one
        routing pass groups the documents by routed shard, then each
        shard's batch is applied as a unit — on that shard's worker under
        the ``threads`` backend, in shard-id order under ``serial``.

        Per-document semantics match :meth:`write` exactly — same clock
        advancement, admission checks, routing decisions and workload
        accounting, in submission order — but the per-document overheads
        (span trees, counter lookups, history sampling) are paid once per
        batch, which is where the bulk throughput win comes from.

        Never raises for a per-document failure: every submitted source
        gets a :class:`~repro.exec.BulkItemResult` in submission order and
        failed documents carry their exception. With ``stop_on_error`` the
        routing pass stops admitting documents after the first failure
        (matching a per-document loop that raises mid-way); the remaining
        items share the stopping error.
        """
        telemetry = self.telemetry
        tracer = telemetry.tracer
        metrics = telemetry.metrics
        schema = self.config.schema
        governor = self.governor
        sources = list(sources)
        items: list[BulkItemResult | None] = [None] * len(sources)
        tenants: list[object] = [None] * len(sources)
        groups: dict[int, list[tuple[int, object, object, Mapping[str, Any]]]] = {}
        ctx = self._new_trace("bulk_write")
        with tracer.trace(
            "bulk_write", ctx, sampler=self.trace_sampler, docs=len(sources)
        ) as span:
            stopped_at: int | None = None
            with tracer.span("bulk.route", policy=self.policy.name):
                for position, source in enumerate(sources):
                    doc_id = None
                    try:
                        tenant_id = source[schema.tenant_field]
                        doc_id = source[schema.id_field]
                        created_time = float(source[schema.time_field])
                        self.advance_clock(created_time)
                        if governor is not None:
                            governor.admit_write(
                                tenant_id,
                                self._clock,
                                doc_bytes(source)
                                if governor.config.indexed_bytes_quota is not None
                                else 0,
                            )
                        shard_id = self.policy.route_write(
                            tenant_id, doc_id, created_time
                        )
                    except Exception as exc:
                        if isinstance(exc, TenantThrottledError):
                            self._emit_event(
                                "shed" if exc.budget == "queue" else "throttle",
                                tenant=exc.tenant, ctx=ctx,
                                op="bulk_write", budget=exc.budget,
                            )
                        if self.slo is not None:
                            self.slo.record(
                                "write",
                                getattr(exc, "tenant", None),
                                0.0,
                                self._clock,
                                error=True,
                            )
                        items[position] = BulkItemResult(
                            position=position, doc_id=doc_id, ok=False, error=exc
                        )
                        if stop_on_error:
                            stopped_at = position
                            break
                        continue
                    tenants[position] = tenant_id
                    self.monitor.record_write(tenant_id, self._clock)
                    raw_attributes = source.get("attributes")
                    if raw_attributes:
                        from repro.storage.document import parse_attributes

                        self._subattr_frequencies.record_write(
                            parse_attributes(str(raw_attributes)).keys()
                        )
                    groups.setdefault(shard_id, []).append(
                        (position, tenant_id, doc_id, source)
                    )
            if stopped_at is not None:
                # Documents after the failure never entered the routing
                # pass — they were not admitted and will not be applied.
                stopping_error = items[stopped_at].error
                for position in range(stopped_at + 1, len(sources)):
                    items[position] = BulkItemResult(
                        position=position, ok=False, error=stopping_error
                    )
            shard_ids = sorted(groups)
            with tracer.span("bulk.apply", shards=len(shard_ids)):
                if self.executor is not None:
                    self.executor.map_ordered(
                        lambda shard_id: self._apply_bulk_batch(
                            shard_id, groups[shard_id], items
                        ),
                        shard_ids,
                        phase="bulk",
                    )
                else:
                    for shard_id in shard_ids:
                        self._apply_bulk_batch(shard_id, groups[shard_id], items)
        applied = sum(1 for item in items if item is not None and item.ok)
        metrics.counter("esdb_bulk_writes_total").inc()
        if applied:
            metrics.counter("esdb_bulk_docs_total").inc(applied)
        duration = span.duration
        per_doc = duration / len(sources) if sources else 0.0
        if telemetry.enabled and applied:
            histogram = metrics.histogram("esdb_write_seconds")
            exemplar = ctx.trace_id if ctx is not None and ctx.sampled else None
            for _ in range(applied):
                histogram.observe(per_doc, trace_id=exemplar)
        if self.obsv is not None:
            for item in items:
                if item is not None and item.ok:
                    self.obsv.record_write(
                        tenants[item.position],
                        item.shard_id,
                        per_doc,
                        self._clock,
                        trace=None,
                        trace_id=ctx.trace_id if ctx is not None else None,
                    )
        if self.slo is not None:
            for item in items:
                if item is not None and item.ok:
                    self.slo.record(
                        "write", tenants[item.position], per_doc, self._clock
                    )
                    if self.hotkeys is not None:
                        self.hotkeys.record_write(
                            tenants[item.position], item.shard_id, item.doc_id
                        )
            self._slo_tick(ctx)
        if self.timeseries is not None:
            self.timeseries.maybe_sample(self._clock)
        return BulkResult(items=list(items), took=duration)

    def _apply_bulk_batch(
        self,
        shard_id: int,
        batch: list[tuple[int, object, object, Mapping[str, Any]]],
        items: list,
    ) -> None:
        """Apply one shard's bulk batch (runs on that shard's worker under
        the thread backend). Documents stay in submission order; each
        failure is recorded on its item without aborting the batch."""
        replica_set = self.replica_sets.get(shard_id)
        engine = self.engines[shard_id]
        shard = self.cluster.shard(shard_id)
        governor = self.governor
        started = time.perf_counter()
        applied = 0
        if replica_set is None and len(batch) > 1:
            # Fast path: one engine lock acquisition for the whole shard
            # batch. On any failure fall through to the per-document loop
            # for exact error attribution — re-indexing an already-applied
            # document is a same-id replace, so the retry is idempotent.
            try:
                engine.bulk_index([source for _, _, _, source in batch])
            except Exception:
                pass
            else:
                for position, tenant_id, doc_id, source in batch:
                    shard.record_write()
                    self._doc_shard[doc_id] = shard_id
                    items[position] = BulkItemResult(
                        position=position, doc_id=doc_id, shard_id=shard_id
                    )
                self.telemetry.metrics.counter(
                    "esdb_writes_total", shard=shard_id
                ).inc(len(batch))
                if governor is not None:
                    elapsed = time.perf_counter() - started
                    share = elapsed / len(batch)
                    for position, tenant_id, _, _ in batch:
                        governor.charge_cpu(tenant_id, share, op="bulk_write")
                return
        for position, tenant_id, doc_id, source in batch:
            try:
                if replica_set is not None:
                    replica_set.index(source)
                else:
                    engine.index(source)
            except Exception as exc:
                items[position] = BulkItemResult(
                    position=position,
                    doc_id=doc_id,
                    shard_id=shard_id,
                    ok=False,
                    error=exc,
                )
                continue
            shard.record_write()
            self._doc_shard[doc_id] = shard_id
            items[position] = BulkItemResult(
                position=position, doc_id=doc_id, shard_id=shard_id
            )
            applied += 1
        if applied:
            self.telemetry.metrics.counter(
                "esdb_writes_total", shard=shard_id
            ).inc(applied)
        if governor is not None and batch:
            # CPU accounting where the work actually ran: the batch's
            # engine time, attributed evenly to each document's tenant.
            elapsed = time.perf_counter() - started
            share = elapsed / len(batch)
            for position, tenant_id, _, _ in batch:
                governor.charge_cpu(tenant_id, share, op="bulk_write")

    def write_many(self, sources: Iterable[Mapping[str, Any]]) -> int:
        result = self.bulk_write(sources, stop_on_error=True)
        result.raise_first()
        return len(result.items)

    def execute_batch(self, sqls: Iterable[str]) -> list[QueryResult]:
        """Execute a batch of SQL statements with shared execution
        (:mod:`repro.exec.shared`): exact duplicates run once, same-column
        scan filters share one doc-values pass per shard. With coalescing
        disabled this is exactly a loop over :meth:`execute_sql` — results
        always align with the input positions either way."""
        return _shared_execute_batch(self, list(sqls))

    def close(self) -> None:
        """Release the execution backend (idempotent; serial is a no-op)."""
        if self.executor is not None:
            self.executor.shutdown()

    def update(self, doc_id: object, changes: Mapping[str, Any]) -> None:
        """Update by document id — routed via the same rules that placed it
        (read-your-writes consistency, §4.2)."""
        shard_id = self._locate(doc_id)
        if shard_id in self.replica_sets:
            self.replica_sets[shard_id].update(doc_id, dict(changes))
        else:
            self.engines[shard_id].update(doc_id, changes)

    def delete(self, doc_id: object) -> None:
        shard_id = self._locate(doc_id)
        if shard_id in self.replica_sets:
            self.replica_sets[shard_id].delete(doc_id)
        else:
            self.engines[shard_id].delete(doc_id)
        del self._doc_shard[doc_id]

    def _locate(self, doc_id: object) -> int:
        shard_id = self._doc_shard.get(doc_id)
        if shard_id is None:
            raise QueryError(f"unknown document id {doc_id!r}")
        return shard_id

    def refresh(self) -> None:
        """Refresh every shard (make all writes searchable)."""
        for engine in self.engines.values():
            engine.refresh()

    # -- replication (when EsdbConfig.replication == "physical") --------------
    def replicate(self, now: float | None = None) -> int:
        """Run one quick incremental replication round on every shard's
        replica set; returns the number of in-sync replicas cluster-wide."""
        if not self.replica_sets:
            raise EsdbError("replication is not enabled on this instance")
        self.refresh()
        return sum(rs.replicate_all(now) for rs in self.replica_sets.values())

    def fail_primary(self, shard_id: int) -> None:
        """Simulate the loss of a shard's primary: promote the most
        up-to-date replica (segments + translog replay) and swap it in as
        the serving engine. Remaining replicas are re-homed onto the
        promoted primary and keep replicating; with no copies left the
        shard continues unreplicated until a new set is seeded (operator
        action, as in §4.3's manual fault-handling)."""
        replica_set = self.replica_sets.get(shard_id)
        if replica_set is None:
            raise EsdbError(f"shard {shard_id} has no replica set")
        promoted = replica_set.promote()
        promoted.refresh()
        self.engines[shard_id] = promoted
        self._emit_event("promotion", shard=shard_id)
        if not replica_set.replicators:
            del self.replica_sets[shard_id]
        # The shard's engine object (and its generation counter) changed:
        # drop every cached read that might reference the old primary.
        if self.request_cache is not None:
            self.request_cache.invalidate_shard(shard_id)
            self.request_cache.attach(promoted)
        if self.result_cache is not None:
            self.result_cache.clear()

    # -- fault injection (repro.faults) ----------------------------------------
    def inject_fault(self, kind: str, target: object = None, **params) -> str:
        """Inject one fault (see :data:`repro.faults.FAULT_KINDS`) and
        return a human-readable detail string. The injector is created on
        first use, so an instance that never injects pays nothing."""
        from repro.faults import FaultInjector

        if self.faults is None:
            self.faults = FaultInjector(self)
        return self.faults.inject(kind, target, **params)

    def recover(self, kind: str | None = None, target: object = None) -> int:
        """Recover active injected faults matching *kind*/*target* (both
        None = everything), running consensus catch-up where the fault
        kind requires it. Returns the number of faults lifted."""
        if self.faults is None:
            return 0
        return self.faults.recover(kind, target)

    # -- balancing --------------------------------------------------------------
    def rebalance(self) -> list[tuple[object, int, float]]:
        """Run one balance round; returns committed (tenant, offset,
        effective_time) tuples. No-op for non-dynamic policies."""
        if not isinstance(self.policy, DynamicSecondaryHashRouting):
            return []
        metrics = self.telemetry.metrics
        ctx = self._new_trace("rebalance")
        with self.telemetry.tracer.trace(
            "balance.round", ctx, sampler=self.trace_sampler
        ):
            self.monitor.roll_window(self._clock)
            if self.obsv is not None:
                # Same clock, same window length: the observer's skew window
                # closes exactly with the monitor's balancing window, so an
                # alert and the rule it triggers share one measurement.
                self.obsv.roll(self._clock)
                if self.governor is not None and self.obsv.last_alerts:
                    demoted = self.governor.apply_alerts(
                        self.obsv.last_alerts, self._clock
                    )
                    for tenant in demoted:
                        self._emit_event("demotion", tenant=tenant, ctx=ctx)
            committed = []
            for proposal in self.balancer.rebalance():
                try:
                    outcome = self.consensus.propose(
                        RuleProposal("facade", proposal.tenant_id, proposal.offset),
                        self._clock,
                    )
                except ConsensusAborted:
                    self.balancer.retract(proposal)
                    metrics.counter("balancer_proposals_total", outcome="aborted").inc()
                    continue
                self.policy.rules.update(
                    outcome.effective_time, proposal.offset, proposal.tenant_id
                )
                metrics.counter("balancer_proposals_total", outcome="committed").inc()
                if self.obsv is not None:
                    self.obsv.annotate_committed(
                        self.policy.rules,
                        proposal.tenant_id,
                        proposal.offset,
                        outcome.effective_time,
                    )
                self._emit_event(
                    "rule_commit",
                    tenant=proposal.tenant_id,
                    ctx=ctx,
                    offset=proposal.offset,
                    effective_time=outcome.effective_time,
                )
                committed.append(
                    (proposal.tenant_id, proposal.offset, outcome.effective_time)
                )
        if self.slo is not None:
            self._slo_tick(ctx)
        if self.timeseries is not None:
            self.timeseries.maybe_sample(self._clock)
        return committed

    # -- query path ----------------------------------------------------------------
    def execute_sql(self, sql: str) -> QueryResult:
        """End-to-end SQL execution: parse, translate, plan, fan out,
        aggregate."""
        result, _ = self._execute_traced(self.telemetry.tracer, sql=sql)
        return result

    def execute_statement(self, statement: SelectStatement) -> QueryResult:
        result, _ = self._execute_traced(self.telemetry.tracer, statement=statement)
        return result

    def explain_analyze(self, sql: str) -> Span:
        """EXPLAIN ANALYZE: execute *sql* and return the span tree of the
        run — parse → rewrite → plan selection → one span per shard
        subquery → coordinator aggregation, each with its measured duration.

        Works regardless of the instance's telemetry mode (a dedicated
        tracer records this one query). The result row count and total hits
        are attached as tags on the root span; use :meth:`Span.render` for
        a human-readable tree.
        """
        tracer = Tracer()
        result, root = self._execute_traced(tracer, sql=sql)
        root.tags["rows"] = len(result.rows)
        root.tags["total_hits"] = result.total_hits
        if root.trace_id is not None:
            # Surface the id in render() output so an EXPLAIN ANALYZE can
            # be cross-referenced with slow-log entries and cat_events.
            root.tags["trace_id"] = root.trace_id
        return root

    def _rule_version(self) -> int:
        """Current rule-list version (0 for policies without a rule list)."""
        rules = getattr(self.policy, "rules", None)
        return rules.version if rules is not None else 0

    def _engine_generation(self, shard_id: int) -> int:
        return self.engines[shard_id].generation

    def _execute_traced(
        self,
        tracer,
        sql: str | None = None,
        statement: SelectStatement | None = None,
    ) -> tuple[QueryResult, Span]:
        """The traced query pipeline shared by execute_sql/execute_statement
        and explain_analyze."""
        metrics = self.telemetry.metrics
        cache_hit = False
        shard_ids: list[int] = []
        governor = self.governor
        query_tenant = None
        ctx = self._new_trace("query")
        if governor is not None:
            # Admission needs the target tenant before the pipeline runs.
            # Raw SQL is parsed up front and the parse reused downstream — a
            # governed execute_sql enters the pipeline at the rewrite stage,
            # exactly like execute_statement (never two parses) — and the
            # extracted tenant is memoized per SQL string so repeat queries
            # (the result-cache hot path) skip the probe parse entirely.
            if statement is not None:
                query_tenant = self._statement_tenant(statement)
            elif sql in self._query_tenant_cache:
                query_tenant = self._query_tenant_cache[sql]
                self._query_tenant_cache.move_to_end(sql)
            else:
                try:
                    probe = parse_sql(sql)
                except QueryError:
                    probe = None  # the traced parse below reports the error
                else:
                    statement = probe
                query_tenant = self._statement_tenant(probe)
                while len(self._query_tenant_cache) >= 512:
                    self._query_tenant_cache.popitem(last=False)
                self._query_tenant_cache[sql] = query_tenant
            try:
                governor.admit_query(query_tenant, self._clock)
            except TenantThrottledError as exc:
                self._emit_event(
                    "shed" if exc.budget == "queue" else "throttle",
                    tenant=query_tenant, ctx=ctx, op="query", budget=exc.budget,
                )
                if self.slo is not None:
                    self.slo.record(
                        "query", query_tenant, 0.0, self._clock, error=True
                    )
                    self._slo_tick(ctx)
                raise
        with tracer.trace("query", ctx, sampler=self.trace_sampler) as root:
            result_key = None
            if self.result_cache is not None:
                fingerprint = (
                    sql_fingerprint(sql)
                    if sql is not None
                    else statement_fingerprint(statement)
                )
                result_key = (fingerprint, self._rule_version())
                cached = self.result_cache.get(*result_key, self._engine_generation)
                if cached is not None:
                    # The whole fan-out is skipped: surface the hit as its
                    # own span where the executor subtree would have been.
                    with tracer.span(
                        "cache.hit", level="result", fingerprint=fingerprint
                    ):
                        pass
                    root.tags["cache"] = "hit"
                    root.tags["fanout"] = cached.subqueries
                    result = cached
                    cache_hit = True
                    hit_subattrs = self._subattr_by_fingerprint.get(fingerprint)
                    if hit_subattrs:
                        self._subattr_frequencies.record_query(hit_subattrs)
            if not cache_hit:
                result, shard_ids, statement = self._execute_fanout(
                    tracer, root, sql, statement
                )
                if result_key is not None:
                    validators = tuple(
                        (shard_id, self.engines[shard_id].generation)
                        for shard_id in shard_ids
                    )
                    self.result_cache.put(*result_key, result, validators)
                    while len(self._subattr_by_fingerprint) >= 512:
                        self._subattr_by_fingerprint.popitem(last=False)
                    self._subattr_by_fingerprint[result_key[0]] = tuple(
                        p.key_name
                        for p in iter_predicates(statement.where)
                        if isinstance(p, SubAttributePredicate)
                    )
        if governor is not None:
            governor.charge_query(
                query_tenant,
                self._clock,
                # Summing row sizes costs a str() per field; only pay it
                # when a result-byte budget actually consumes the number.
                result_bytes=(
                    sum(doc_bytes(row) for row in result.rows)
                    if governor.config.result_bytes_quota is not None
                    else 0
                ),
                scanned=0 if cache_hit else result.total_hits,
            )
        metrics.counter("esdb_queries_total").inc()
        if not cache_hit:
            metrics.counter("esdb_subqueries_total").inc(len(shard_ids))
            if self.telemetry.enabled:
                metrics.histogram("esdb_query_seconds").observe(
                    root.duration,
                    trace_id=ctx.trace_id if ctx is not None and ctx.sampled else None,
                )
        if self.obsv is not None:
            if sql is not None:
                detail = sql.strip()
            else:
                detail = statement_fingerprint(statement) if statement else ""
            slow_entry = self.obsv.record_search(
                self._statement_tenant(statement),
                root.duration,
                self._clock,
                detail=detail,
                trace=root,
                trace_id=ctx.trace_id if ctx is not None else None,
            )
            if slow_entry is not None:
                self._emit_event(
                    "slow_query",
                    tenant=slow_entry.tenant,
                    ctx=ctx,
                    level=slow_entry.level,
                    elapsed=slow_entry.elapsed,
                )
        if self.slo is not None:
            slo_tenant = self._statement_tenant(statement)
            self.slo.record("query", slo_tenant, root.duration, self._clock)
            if self.hotkeys is not None:
                fingerprint = (
                    sql_fingerprint(sql)
                    if sql is not None
                    else statement_fingerprint(statement)
                )
                self.hotkeys.record_query(
                    slo_tenant,
                    fingerprint,
                    self._query_terms(statement),
                )
            self._slo_tick(ctx)
        if self.timeseries is not None:
            self.timeseries.maybe_sample(self._clock)
        return result, root

    def _statement_tenant(self, statement: SelectStatement | None):
        """The tenant a statement targets via an equality predicate (the
        shard-pruning condition), or None for cross-tenant queries."""
        if statement is None:
            return None
        tenant_field = self.config.schema.tenant_field
        for predicate in iter_predicates(statement.where):
            if (
                isinstance(predicate, ComparisonPredicate)
                and predicate.column == tenant_field
                and predicate.op == "="
            ):
                return predicate.value
        return None

    @staticmethod
    def _query_terms(statement: SelectStatement | None) -> list[str]:
        """The filter terms a statement exercises, for heavy-hitter
        tracking: ``column=value`` for equality comparisons, the bare
        column for ranges, ``attr:key`` for sub-attribute filters. A
        result-cache hit on raw SQL never parses, so it contributes no
        terms (the fingerprint still counts)."""
        if statement is None:
            return []
        terms: list[str] = []
        for predicate in iter_predicates(statement.where):
            if isinstance(predicate, SubAttributePredicate):
                terms.append(f"attr:{predicate.key_name}")
            elif isinstance(predicate, ComparisonPredicate):
                if predicate.op == "=":
                    terms.append(f"{predicate.column}={predicate.value}")
                else:
                    terms.append(str(predicate.column))
        return terms

    def _slo_tick(self, ctx: TraceContext | None = None) -> None:
        """One deterministic SLO heartbeat at the instance's logical clock:
        decay the heavy-hitter sketches when their window closed, and when
        an evaluation is due, advance every objective's burn state machine,
        emitting ``slo_burn``/``slo_recovered`` events for the transitions.
        Called only from coordinator paths (never workers), so firing ticks
        are identical under the serial and threads backends."""
        slo = self.slo
        if slo is None:
            return
        if self.hotkeys is not None:
            self.hotkeys.maybe_roll(self._clock)
        if not slo.due(self._clock):
            return
        if self.hotkeys is not None:
            self.hotkeys.export_gauges()
        for alert in slo.evaluate(self._clock):
            self._emit_event(
                alert.kind,
                tenant=alert.tenant,
                ctx=ctx,
                slo=alert.slo,
                fast_burn=round(alert.fast_burn, 4),
                slow_burn=round(alert.slow_burn, 4),
                budget_remaining_pct=round(alert.budget_remaining_pct, 2),
            )

    def _slo_attribution(self, alert) -> dict:
        """Name the heavy hitters behind one skew alert (the Observer calls
        this for every alert it fires when profiling is on): hot routing
        keys and query fingerprints for a hot tenant, hot routing keys for
        a hot shard."""
        hotkeys = self.hotkeys
        if hotkeys is None:
            return {}
        detail: dict = {}
        subject = str(alert.subject)
        if alert.kind == "hot_tenant":
            keys = hotkeys.hot_keys_for_tenant(subject)
            queries = hotkeys.hot_queries_for_tenant(subject)
            if keys:
                detail["hot_keys"] = ",".join(str(key) for key, _, _ in keys)
            if queries:
                detail["hot_queries"] = ",".join(str(q) for q, _, _ in queries)
        elif alert.kind == "hot_shard" and subject.startswith("shard-"):
            keys = hotkeys.hot_keys_for_shard(int(subject.split("-", 1)[1]))
            if keys:
                detail["hot_keys"] = ",".join(str(key) for key, _, _ in keys)
        return detail

    def _execute_fanout(
        self,
        tracer,
        root: Span,
        sql: str | None,
        statement: SelectStatement | None,
    ) -> tuple[QueryResult, list[int], SelectStatement]:
        """Parse → rewrite → plan → per-shard execution (through the shard
        request cache) → aggregation. Returns the result, the fan-out, and
        the rewritten statement."""
        if statement is None:
            with tracer.span("query.parse"):
                statement = parse_sql(sql)
        with tracer.span("query.rewrite"):
            translated = self.xdriver.translate(statement)
            statement = translated.statement
        queried_subattrs = [
            p.key_name
            for p in iter_predicates(statement.where)
            if isinstance(p, SubAttributePredicate)
        ]
        if queried_subattrs:
            self._subattr_frequencies.record_query(queried_subattrs)
        with tracer.span("query.plan") as plan_span:
            plan = self.optimizer.plan(statement)
            plan_span.tags["root"] = type(plan.root).__name__
        shard_ids = self._target_shards(statement)
        root.tags["fanout"] = len(shard_ids)
        aggregator = ResultAggregator(
            columns=statement.columns,
            order_by=statement.order_by,
            limit=statement.limit,
            group_by=statement.group_by,
            having=statement.having,
        )
        push_limit = self._pushdown_limit(statement)
        statement_key = (
            statement_fingerprint(statement) if self.request_cache is not None else None
        )
        if self.executor is not None and len(shard_ids) > 1:
            shard_results = self._parallel_shard_results(
                tracer, root, plan, statement, shard_ids, statement_key, push_limit
            )
        else:
            shard_results = []
            for shard_id in shard_ids:
                with tracer.span(f"query.shard[{shard_id}]") as sub_span:
                    engine = self.engines[shard_id]
                    if statement_key is not None:
                        entry = self.request_cache.get(
                            shard_id, statement_key, engine.generation
                        )
                        if entry is not None:
                            # Subquery skipped: a cache.hit span stands in
                            # for the executor subtree.
                            with tracer.span("cache.hit", level="request"):
                                pass
                            sub_span.tags["cache"] = "hit"
                            sub_span.tags["matched"] = entry[1]
                            shard_results.append(entry)
                            continue
                    entry, matched = self._shard_subquery(
                        shard_id, plan, statement, statement_key, push_limit,
                        telemetry=self.telemetry,
                    )
                    sub_span.tags["matched"] = matched
                    shard_results.append(entry)
        with tracer.span("query.aggregate"):
            result = aggregator.aggregate_shards(shard_results)
        return result, shard_ids, statement

    def _shard_subquery(
        self,
        shard_id: int,
        plan,
        statement: SelectStatement,
        statement_key,
        push_limit: int | None,
        telemetry=None,
    ) -> tuple[tuple, int]:
        """Execute one shard's subquery (cache miss path): plan execution,
        LIMIT pushdown, raw-document fetch, request-cache fill. Returns the
        shard entry and its matched count. Thread-safe — the parallel
        fan-out runs it on workers with the no-op telemetry."""
        engine = self.engines[shard_id]
        executor = QueryExecutor(
            engine, telemetry=telemetry if telemetry is not None else NULL_TELEMETRY
        )
        rows, _ = executor.execute(plan)
        matched = len(rows)
        if push_limit is not None:
            if statement.order_by is not None:
                rows = engine.top_k(
                    rows,
                    statement.order_by.column,
                    push_limit,
                    descending=statement.order_by.descending,
                )
            elif matched > push_limit:
                from repro.storage.postings import PostingList

                rows = PostingList(list(rows)[:push_limit], presorted=True)
        entry = ([doc.source for doc in engine.fetch(rows)], matched)
        if statement_key is not None:
            self.request_cache.put(shard_id, statement_key, engine.generation, entry)
        return entry, matched

    def _parallel_shard_results(
        self,
        tracer,
        root: Span,
        plan,
        statement: SelectStatement,
        shard_ids: list[int],
        statement_key,
        push_limit: int | None,
    ) -> list:
        """Scatter-gather: dispatch every shard subquery to the worker pool
        and merge in shard-id order — results never depend on completion
        order, so the thread backend's answers equal the serial backend's.

        Each worker records its real span tree on a private single-trace
        :class:`Tracer` (span stacks are thread-local, so it cannot nest
        under the coordinator's open span directly); the coordinator
        re-parents the finished ``query.shard[i]`` roots under *root* in
        shard-id order, producing a tree structurally identical to the
        serial backend's. Deterministic span ids are assigned afterwards,
        at root close, so thread scheduling never leaks into the ids.
        Workers skip recording entirely when the coordinator tracer is
        disabled or the propagated trace context is head-unsampled."""
        governor = self.governor
        query_tenant = (
            self._statement_tenant(statement) if governor is not None else None
        )
        record_spans = bool(getattr(tracer, "enabled", False))

        def shard_entry(shard_id: int, wtracer) -> tuple[tuple, bool]:
            engine = self.engines[shard_id]
            if statement_key is not None:
                entry = self.request_cache.get(
                    shard_id, statement_key, engine.generation
                )
                if entry is not None:
                    if wtracer is not None:
                        # Subquery skipped: a cache.hit span stands in for
                        # the executor subtree, exactly as in the serial path.
                        with wtracer.span("cache.hit", level="request"):
                            pass
                    return entry, True
            entry, _ = self._shard_subquery(
                shard_id, plan, statement, statement_key, push_limit
            )
            return entry, False

        def run_shard(shard_id: int):
            ctx = current_context()
            record = record_spans and (ctx is None or ctx.sampled)
            wtracer = Tracer(max_finished=1) if record else None
            started = time.perf_counter()
            if wtracer is not None:
                with wtracer.span(f"query.shard[{shard_id}]") as sub_span:
                    entry, cache_hit = shard_entry(shard_id, wtracer)
                    # Tag insertion order mirrors the serial branch so the
                    # rendered trees compare byte-for-byte across backends.
                    if cache_hit:
                        sub_span.tags["cache"] = "hit"
                    sub_span.tags["matched"] = entry[1]
                worker_root = wtracer.last_trace()
            else:
                entry, _ = shard_entry(shard_id, None)
                worker_root = None
            if governor is not None:
                governor.charge_cpu(
                    query_tenant, time.perf_counter() - started, op="query"
                )
            return entry, worker_root

        outcomes = self.executor.map_ordered(run_shard, shard_ids, phase="query")
        shard_results = []
        for entry, worker_root in outcomes:
            if worker_root is not None:
                root.children.append(worker_root)
            shard_results.append(entry)
        return shard_results

    @staticmethod
    def _pushdown_limit(statement: SelectStatement) -> int | None:
        """LIMIT pushdown: each shard needs at most LIMIT rows when the
        coordinator only sorts/truncates (no aggregates, which need every
        row; ORDER BY is satisfied by per-shard top-k + global merge)."""
        if statement.limit is None or statement.has_aggregates:
            return None
        return statement.limit

    def _target_shards(self, statement: SelectStatement) -> list[int]:
        """Shard pruning: a tenant-equality predicate restricts the fan-out
        to the tenant's consecutive shard range; otherwise all shards."""
        tenant_field = self.config.schema.tenant_field
        for predicate in iter_predicates(statement.where):
            if (
                isinstance(predicate, ComparisonPredicate)
                and predicate.column == tenant_field
                and predicate.op == "="
            ):
                return list(self.policy.query_shards(predicate.value))
        return list(range(self.cluster.num_shards))

    # -- introspection -----------------------------------------------------------
    def doc_count(self) -> int:
        return sum(e.doc_count() for e in self.engines.values())

    def shard_doc_counts(self) -> dict[int, int]:
        return {sid: e.doc_count() for sid, e in self.engines.items()}

    def tenant_fanout(self, tenant_id: object) -> int:
        """Subqueries a query for *tenant_id* currently requires."""
        return len(self.policy.query_shards(tenant_id))

    # -- _cat surfaces and the dashboard (repro.obsv) -------------------------
    def cat_nodes(self) -> CatTable:
        """``_cat/nodes``: roles, health, shard placement, per-node load."""
        return cat_nodes(self)

    def cat_shards(self) -> CatTable:
        """``_cat/shards``: placement, doc count and segments per shard."""
        return cat_shards(self)

    def cat_tenants(self, k: int | None = None) -> CatTable:
        """``_cat``-style tenants table: storage, window load, shard span."""
        return cat_tenants(self, k=k)

    def cat_tenant_governance(self, k: int | None = None) -> CatTable:
        """Per-tenant governance table: QoS class and admit/queue/shed
        counters (empty when governance is disabled)."""
        return cat_tenant_governance(self, k=k)

    def cat_rules(self) -> CatTable:
        """Committed secondary hashing rules with their trigger measurements."""
        return cat_rules(self)

    def cat_caches(self) -> CatTable:
        """Per-level query-cache statistics."""
        return cat_caches(self)

    def cat_faults(self) -> CatTable:
        """Fault-injection history: every inject/recover action with its
        current status (``active`` while un-recovered)."""
        return cat_faults(self)

    def cat_exec(self) -> CatTable:
        """Execution-core statistics: pool shape, per-phase task counts,
        per-worker spread, bulk volumes and shared-scan savings (empty on
        a serial instance that never bulk-wrote or batched queries)."""
        return cat_exec(self)

    def cat_events(
        self,
        kind: str | None = None,
        tenant: str | None = None,
        trace_id: str | None = None,
        k: int | None = None,
    ) -> CatTable:
        """Structured event log (throttles, demotions, faults, promotions,
        slow queries, rule commits), filterable by kind/tenant/trace."""
        return cat_events(self, kind=kind, tenant=tenant, trace_id=trace_id, k=k)

    def cat_timeseries(self, k: int | None = None) -> CatTable:
        """Performance history: one row per recorded time series with a
        sparkline over the retained window (top-*k* by name when given)."""
        return cat_timeseries(self, k=k)

    def cat_slo(self) -> CatTable:
        """Per-objective SLO status: good/bad totals, error budget
        remaining, fast/slow burn rates and burn state (empty when SLO
        tracking is disabled)."""
        return cat_slo(self)

    def cat_hotkeys(self, k: int | None = None) -> CatTable:
        """Heavy hitters: top-*k* hot routing keys, filter terms and query
        fingerprints per scope (global / shard / tenant), each estimate
        with its count-error bound (empty when profiling is disabled)."""
        return cat_hotkeys(self, k=k)

    def diagnostics_bundle(self) -> dict:
        """One-call flight recording: config summary, cat tables, time
        series, recent traces, events and slow logs in a single JSON-ready
        dict (see :mod:`repro.obsv.bundle` for the schema)."""
        from repro.obsv.bundle import diagnostics_bundle

        return diagnostics_bundle(self)

    def sample_timeseries(self, now: float | None = None, force: bool = False) -> bool:
        """Take a performance-history sample at *now* (default: the
        instance's logical clock). ``force=True`` samples even between
        interval boundaries. Returns whether a sample was taken."""
        if self.timeseries is None:
            return False
        at = self._clock if now is None else now
        self.advance_clock(at)
        if force:
            self.timeseries.sample(at)
            return True
        return self.timeseries.maybe_sample(at)

    def dashboard(self) -> str:
        """The one-page text dashboard (nodes, shard heatmap, top tenants,
        alerts, slow-log tail) — see also ``python -m repro.obsv``."""
        return render_dashboard(self)

    def obsv_snapshot(self) -> dict:
        """The dashboard as a JSON-ready dict."""
        return cluster_snapshot(self)

    def suggest_subattribute_indexes(self, k: int = 30) -> frozenset:
        """Frequency-based indexing advisor (§3.2): the top-*k* sub-attributes
        by observed *query* frequency (write frequency as tiebreaker),
        suitable for ``EsdbConfig.indexed_subattributes`` on the next roll.

        Frequencies accumulate automatically: every executed ATTR() filter
        and every written document's sub-attribute names are recorded.
        """
        return self._subattr_frequencies.top_k(k)

    def explain(self, sql: str) -> str:
        """EXPLAIN: show the Xdriver4ES rewrite, the ES-DSL tree, the RBO
        physical plan, and the shard fan-out for *sql* without executing it."""
        statement = parse_sql(sql)
        translated = self.xdriver.translate(statement)
        plan = self.optimizer.plan(translated.statement)
        shard_ids = self._target_shards(translated.statement)
        lines = [f"SQL: {sql.strip()}"]
        if translated.dsl is not None:
            lines.append(f"ES-DSL: {translated.dsl.to_json()}")
            lines.append(
                "rewrite: depth "
                f"{translated.original_depth} -> "
                f"{translated.original_depth - translated.depth_reduction}, "
                f"width {translated.original_width} -> "
                f"{translated.original_width - translated.width_reduction}"
            )
        lines.append("plan:")
        lines.append("  " + plan.describe().replace("\n", "\n  "))
        lines.append(
            f"fan-out: {len(shard_ids)} shard(s) "
            f"[{shard_ids[0]}..{shard_ids[-1]}]"
            if shard_ids
            else "fan-out: 0 shards"
        )
        if self._pushdown_limit(translated.statement) is not None:
            lines.append(f"pushdown: per-shard LIMIT {translated.statement.limit}")
        return "\n".join(lines)

    # -- index management (the "Add/Drop Index" box of Figure 3) -------------
    def add_index(self, columns) -> str:
        """Build a composite index on *columns* across every shard and make
        the optimizer aware of it; returns the index name."""
        columns = tuple(columns)
        name = None
        for engine in self.engines.values():
            name = engine.add_composite_index(columns)
        self._catalog = CatalogInfo(
            schema=self._catalog.schema,
            composite_indexes=self._catalog.composite_indexes + (columns,),
            scan_columns=self._catalog.scan_columns,
            indexed_subattributes=self._catalog.indexed_subattributes,
        )
        self.optimizer = RuleBasedOptimizer(
            self._catalog,
            enabled=self.config.optimizer_enabled,
            telemetry=self.telemetry,
        )
        return name or "_".join(columns)

    def drop_index(self, name: str) -> None:
        """Drop a dynamically added composite index cluster-wide."""
        for engine in self.engines.values():
            engine.drop_composite_index(name)
        remaining = tuple(
            columns
            for columns in self._catalog.composite_indexes
            if "_".join(columns) != name
        )
        self._catalog = CatalogInfo(
            schema=self._catalog.schema,
            composite_indexes=remaining,
            scan_columns=self._catalog.scan_columns,
            indexed_subattributes=self._catalog.indexed_subattributes,
        )
        self.optimizer = RuleBasedOptimizer(
            self._catalog,
            enabled=self.config.optimizer_enabled,
            telemetry=self.telemetry,
        )

    def list_indexes(self) -> list[str]:
        """Composite indexes currently usable by the optimizer."""
        return sorted("_".join(columns) for columns in self._catalog.composite_indexes)

    def stats_report(self) -> str:
        """Human-readable instance report built from the telemetry registry:
        topology, per-node document distribution, engine counters, latency
        quantiles, optimizer plan picks, cache hit rates, consensus rounds,
        slow-log and skew summaries, and committed routing rules.

        The report is assembled from named sections rendered in sorted
        section order (deterministic output for diffing). With telemetry
        disabled the engine counter lines fall back to the engines' local
        :class:`~repro.storage.engine.EngineStats` and the registry-only
        sections are omitted.
        """
        metrics = self.telemetry.metrics
        sections: dict[str, list[str]] = {}
        cluster_lines = [self.cluster.describe()]
        per_node: dict[int, int] = {n.node_id: 0 for n in self.cluster.nodes}
        for shard_id, engine in self.engines.items():
            per_node[self.cluster.shard(shard_id).node_id] += engine.doc_count()
        cluster_lines.append("documents per node:")
        for node_id, count in sorted(per_node.items()):
            cluster_lines.append(f"  node-{node_id}: {count}")
        sections["cluster"] = cluster_lines
        if self.telemetry.enabled:
            writes = int(metrics.total("engine_writes_total"))
            refreshes = int(metrics.total("engine_refreshes_total"))
            merges = int(metrics.total("engine_merges_total"))
        else:
            writes = sum(e.stats.writes for e in self.engines.values())
            refreshes = sum(e.stats.refreshes for e in self.engines.values())
            merges = sum(e.stats.merges for e in self.engines.values())
        segments = sum(e.segment_count() for e in self.engines.values())
        sections["engines"] = [
            f"engines: {writes} writes, {refreshes} refreshes, {merges} merges, "
            f"{segments} live segments"
        ]
        sections.update(self._registry_report_sections())
        sections.update(self._timeseries_report_section())
        if self.obsv is not None:
            sections.update(self.obsv.report_lines())
        if self.governor is not None:
            sections["tenancy"] = self.governor.report_lines()
        if self.slo is not None:
            sections["slo"] = self.slo.report_lines()
        if self.hotkeys is not None:
            sections["hotkeys"] = self.hotkeys.report_lines()
        if isinstance(self.policy, DynamicSecondaryHashRouting):
            rules = self.policy.rules
            rule_lines = [f"routing rules: {len(rules)} committed"]
            for rule in list(rules)[:10]:
                tenants = sorted(map(str, rule.tenants))[:5]
                suffix = ", ..." if len(rule.tenants) > 5 else ""
                rule_lines.append(
                    f"  t={rule.effective_time:.2f} s={rule.offset} "
                    f"tenants=[{', '.join(tenants)}{suffix}]"
                )
            sections["routing"] = rule_lines
        lines: list[str] = []
        for name in sorted(sections):
            lines.extend(sections[name])
        return "\n".join(lines)

    def _timeseries_report_section(self) -> dict[str, list[str]]:
        """The performance-history section of :meth:`stats_report` —
        well-formed (header-only) when the store is disabled, empty, or
        running against the no-op registry."""
        store = self.timeseries
        if store is None:
            return {}
        lines = [
            f"history: {store.samples_taken} samples @ {store.interval:g}s, "
            f"{len(store.all_series())} series"
        ]
        for label, name in DASHBOARD_SERIES:
            series = store.get(name)
            if series is None or not len(series):
                continue
            summary = series.summary()
            lines.append(
                f"  {label:<14} {sparkline(series.values(), width=32)} "
                f"last={summary['last']:.3f} max={summary['max']:.3f}"
            )
        return {"timeseries": lines}

    def _registry_report_sections(self) -> dict[str, list[str]]:
        """Registry-derived report sections (empty when telemetry is off)."""
        if not self.telemetry.enabled:
            return {}
        metrics = self.telemetry.metrics
        sections: dict[str, list[str]] = {}
        queries = int(metrics.total("esdb_queries_total"))
        if queries:
            subqueries = int(metrics.total("esdb_subqueries_total"))
            sections["queries"] = [
                f"queries: {queries} executed, "
                f"avg fan-out {subqueries / queries:.1f} shard(s)"
            ]
        picks = {
            metric.labels["path"]: int(metric.value)
            for metric in metrics.series("optimizer_plan_picks_total")
        }
        if picks:
            rendered = ", ".join(f"{path}={count}" for path, count in sorted(picks.items()))
            sections["optimizer"] = [f"optimizer picks: {rendered}"]
        latency_lines = []
        for title, name in (
            ("write latency", "esdb_write_seconds"),
            ("query latency", "esdb_query_seconds"),
        ):
            histogram = metrics.get(name)
            if histogram is not None and histogram.count:
                p = histogram.summary()
                latency_lines.append(
                    f"{title}: p50={p['p50'] * 1e3:.3f}ms p95={p['p95'] * 1e3:.3f}ms "
                    f"p99={p['p99'] * 1e3:.3f}ms max={p['max'] * 1e3:.3f}ms"
                )
        if latency_lines:
            sections["latency"] = latency_lines
        cache_lines = []
        for level in ("filter", "request", "result"):
            hits = int(metrics.value("cache_hits_total", level=level))
            misses = int(metrics.value("cache_misses_total", level=level))
            if hits + misses == 0:
                continue
            evictions = int(metrics.value("cache_evictions_total", level=level))
            size = int(metrics.value("cache_bytes", level=level))
            rate = 100.0 * hits / (hits + misses)
            cache_lines.append(
                f"cache[{level}]: {hits} hits / {misses} misses "
                f"({rate:.1f}% hit), {evictions} evictions, {size} bytes"
            )
        if cache_lines:
            sections["cache"] = cache_lines
        rounds = {
            metric.labels["outcome"]: int(metric.value)
            for metric in metrics.series("consensus_rounds_total")
        }
        if rounds:
            sections["consensus"] = [
                "consensus rounds: "
                f"{rounds.get('committed', 0)} committed, "
                f"{rounds.get('aborted', 0)} aborted"
            ]
        return sections
