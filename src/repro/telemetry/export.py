"""Exporters: JSON dumps and Prometheus-style text exposition.

The JSON format round-trips (``parse_json_snapshot`` restores the snapshot
dict), so a ``--profile out.json`` dump from one run can be diffed against
another. The Prometheus format follows the text exposition conventions
(``name{label="value"} value``, ``_bucket``/``_sum``/``_count`` for
histograms with cumulative ``le`` buckets) closely enough for a real
scraper, and :func:`parse_prometheus` reads the counter/gauge lines back
for tests.
"""

from __future__ import annotations

import json
from typing import Any

from repro.telemetry.metrics import MetricsRegistry


def to_json(registry: MetricsRegistry, indent: int | None = 2) -> str:
    """Serialize the registry snapshot as JSON."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


def parse_json_snapshot(text: str) -> dict:
    """Parse a :func:`to_json` dump back into a snapshot dict."""
    snapshot = json.loads(text)
    for section in ("counters", "gauges", "histograms"):
        if section not in snapshot:
            raise ValueError(f"not a telemetry snapshot: missing {section!r}")
    return snapshot


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels.items())
    return "{" + inner + "}"


def _merge_labels(labels: dict, **extra) -> dict:
    merged = dict(labels)
    merged.update({k: str(v) for k, v in extra.items()})
    return merged


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    snapshot = registry.snapshot()
    lines: list[str] = []
    for entry in snapshot["counters"]:
        lines.append(f"# TYPE {entry['name']} counter")
        lines.append(f"{entry['name']}{_format_labels(entry['labels'])} {entry['value']:g}")
    for entry in snapshot["gauges"]:
        lines.append(f"# TYPE {entry['name']} gauge")
        lines.append(f"{entry['name']}{_format_labels(entry['labels'])} {entry['value']:g}")
    for entry in snapshot["histograms"]:
        name = entry["name"]
        labels = entry["labels"]
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for bound, count in entry["buckets"]:
            cumulative += count
            le = "+Inf" if bound == "+Inf" else f"{bound:g}"
            lines.append(
                f"{name}_bucket{_format_labels(_merge_labels(labels, le=le))} {cumulative}"
            )
        lines.append(f"{name}_sum{_format_labels(labels)} {entry['sum']:g}")
        lines.append(f"{name}_count{_format_labels(labels)} {entry['count']}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict:
    """Parse counter/gauge/bucket sample lines back into a dict.

    Returns ``{(name, (("label", "value"), ...)): float}`` — enough for
    round-trip tests; not a full exposition-format parser.
    """
    samples: dict[tuple, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        metric_part, _, value_part = line.rpartition(" ")
        name, labels = _parse_metric(metric_part)
        samples[(name, labels)] = float(value_part)
    return samples


def _parse_metric(metric_part: str) -> tuple[str, tuple]:
    if "{" not in metric_part:
        return metric_part, ()
    name, _, rest = metric_part.partition("{")
    body = rest.rstrip("}")
    labels: list[tuple[str, str]] = []
    for piece in _split_label_pairs(body):
        key, _, raw = piece.partition("=")
        labels.append((key, raw.strip('"')))
    return name, tuple(sorted(labels))


def _split_label_pairs(body: str) -> list[str]:
    pairs, depth_quote, current = [], False, []
    for char in body:
        if char == '"':
            depth_quote = not depth_quote
            current.append(char)
        elif char == "," and not depth_quote:
            pairs.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        pairs.append("".join(current))
    return pairs


def profile_dump(registry: MetricsRegistry, traces: list | None = None) -> dict[str, Any]:
    """The ``--profile out.json`` payload: metrics snapshot plus recent
    trace trees (span name, duration, tags, children)."""
    payload: dict[str, Any] = {"metrics": registry.snapshot()}
    if traces:
        payload["traces"] = [span.to_dict() for span in traces]
    return payload
