"""Exporters: JSON dumps and Prometheus-style text exposition.

The JSON format round-trips (``parse_json_snapshot`` restores the snapshot
dict), so a ``--profile out.json`` dump from one run can be diffed against
another. The Prometheus format follows the text exposition conventions —
one ``# HELP`` + ``# TYPE`` pair per metric name, ``name{label="value"}
value`` samples with escaped label values, ``_bucket``/``_sum``/``_count``
series with cumulative ``le`` buckets for histograms — closely enough for
a real scraper, and :func:`parse_prometheus` reads the sample lines (and,
on request, the HELP/TYPE metadata) back for round-trip tests.
"""

from __future__ import annotations

import json
from typing import Any

from repro.telemetry.metrics import MetricsRegistry


def to_json(registry: MetricsRegistry, indent: int | None = 2) -> str:
    """Serialize the registry snapshot as JSON."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


def parse_json_snapshot(text: str) -> dict:
    """Parse a :func:`to_json` dump back into a snapshot dict."""
    snapshot = json.loads(text)
    for section in ("counters", "gauges", "histograms"):
        if section not in snapshot:
            raise ValueError(f"not a telemetry snapshot: missing {section!r}")
    return snapshot


def _escape_label_value(value: str) -> str:
    """Escape per the exposition format: backslash, double quote, newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_label_value(value: str) -> str:
    out: list[str] = []
    escaped = False
    for char in value:
        if escaped:
            out.append({"n": "\n"}.get(char, char))
            escaped = False
        elif char == "\\":
            escaped = True
        else:
            out.append(char)
    return "".join(out)


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in labels.items()
    )
    return "{" + inner + "}"


def _merge_labels(labels: dict, **extra) -> dict:
    merged = dict(labels)
    merged.update({k: str(v) for k, v in extra.items()})
    return merged


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format.

    Metric names come out in sorted order, each introduced by exactly one
    ``# HELP`` line (from :meth:`MetricsRegistry.set_help`, or a generated
    default) and one ``# TYPE`` line, followed by every series under the
    name. Histograms expand into cumulative ``_bucket`` series plus
    ``_sum``/``_count``.
    """
    snapshot = registry.snapshot()
    entries_by_name: dict[str, tuple[str, list[dict]]] = {}
    for kind_key, kind in (
        ("counters", "counter"),
        ("gauges", "gauge"),
        ("histograms", "histogram"),
    ):
        for entry in snapshot[kind_key]:
            entries_by_name.setdefault(entry["name"], (kind, []))[1].append(entry)
    help_for = getattr(registry, "help_for", None)
    lines: list[str] = []
    for name in sorted(entries_by_name):
        kind, entries = entries_by_name[name]
        help_text = help_for(name) if help_for is not None else f"{name} ({kind})"
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for entry in entries:
            labels = entry["labels"]
            if kind == "histogram":
                exemplars = {
                    index: (value, trace_id)
                    for index, value, trace_id in entry.get("exemplars", [])
                }
                cumulative = 0
                for index, (bound, count) in enumerate(entry["buckets"]):
                    cumulative += count
                    le = "+Inf" if bound == "+Inf" else f"{bound:g}"
                    sample = (
                        f"{name}_bucket"
                        f"{_format_labels(_merge_labels(labels, le=le))} {cumulative}"
                    )
                    if index in exemplars:
                        # OpenMetrics exemplar: `... # {trace_id="..."} value`.
                        value, trace_id = exemplars[index]
                        sample += f' # {{trace_id="{trace_id}"}} {value:g}'
                    lines.append(sample)
                lines.append(f"{name}_sum{_format_labels(labels)} {entry['sum']:g}")
                lines.append(f"{name}_count{_format_labels(labels)} {entry['count']}")
            else:
                lines.append(f"{name}{_format_labels(labels)} {entry['value']:g}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str, with_meta: bool = False) -> dict | tuple[dict, dict]:
    """Parse sample lines back into ``{(name, labels): value}``.

    Labels come back as a sorted tuple of ``(key, value)`` pairs with
    escape sequences resolved — enough for round-trip tests; not a full
    exposition-format parser. With ``with_meta=True`` the return value is
    ``(samples, meta)`` where ``meta`` maps each metric name to its parsed
    ``{"help": ..., "type": ...}`` comment lines.
    """
    samples: dict[tuple, float] = {}
    meta: dict[str, dict] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                name = parts[2]
                value = parts[3] if len(parts) > 3 else ""
                meta.setdefault(name, {})[parts[1].lower()] = value
            continue
        # Strip any OpenMetrics exemplar suffix before splitting off the
        # value — exemplar payloads contain spaces of their own.
        line = line.split(" # {", 1)[0].rstrip()
        metric_part, _, value_part = line.rpartition(" ")
        name, labels = _parse_metric(metric_part)
        samples[(name, labels)] = float(value_part)
    if with_meta:
        return samples, meta
    return samples


def _parse_metric(metric_part: str) -> tuple[str, tuple]:
    if "{" not in metric_part:
        return metric_part, ()
    name, _, rest = metric_part.partition("{")
    body = rest.rstrip("}")
    labels: list[tuple[str, str]] = []
    for piece in _split_label_pairs(body):
        key, _, raw = piece.partition("=")
        labels.append((key, _unescape_label_value(raw.strip('"'))))
    return name, tuple(sorted(labels))


def _split_label_pairs(body: str) -> list[str]:
    """Split ``k1="v1",k2="v2"`` on commas outside quotes, honouring
    backslash escapes (so values may contain commas, quotes, spaces)."""
    pairs: list[str] = []
    current: list[str] = []
    in_quotes = False
    escaped = False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
        elif char == "\\" and in_quotes:
            current.append(char)
            escaped = True
        elif char == '"':
            in_quotes = not in_quotes
            current.append(char)
        elif char == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        pairs.append("".join(current))
    return pairs


def profile_dump(registry: MetricsRegistry, traces: list | None = None) -> dict[str, Any]:
    """The ``--profile out.json`` payload: metrics snapshot plus recent
    trace trees (span name, duration, tags, children)."""
    payload: dict[str, Any] = {"metrics": registry.snapshot()}
    if traces:
        payload["traces"] = [span.to_dict() for span in traces]
    return payload
