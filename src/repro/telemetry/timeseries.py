"""Time-series sampling of the metrics registry, and sparkline rendering.

Everything in :mod:`repro.telemetry.metrics` is *cumulative*: a counter
only says how many writes have ever happened, not whether the last second
was fast or slow. This module adds the time axis. A :class:`TimeSeriesStore`
samples a registry at a fixed logical interval — the clock is injected via
the ``now`` argument of :meth:`TimeSeriesStore.maybe_sample`, so tests and
the simulator drive it deterministically and nothing here reads the wall
clock — into bounded ring-buffered :class:`TimeSeries` per labeled metric.

On top of the raw samples, *derivations* compute the operator-facing series
every dashboard wants: per-interval throughput from counter deltas
(:class:`CounterRate`), per-interval cache hit ratio (:class:`HitRatio`),
running histogram quantiles (:class:`HistogramQuantile`), and the
max/mean spread of a labeled counter's per-interval deltas
(:class:`LabelSpread` — the hot-shard skew series). Derivations are
no-ops against the disabled :class:`~repro.telemetry.runtime.NullRegistry`
(its metric names never exist), so a store attached to a telemetry-off
instance yields well-formed empty output instead of zeros.

:func:`sparkline` renders any series as a fixed-width unicode strip for
``ESDB.dashboard()`` / ``cat_timeseries``; it never raises on degenerate
input (empty, single point, constant, NaN/None, huge ranges).
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from repro.errors import ConfigurationError

#: Eight-level bar ramp used by :func:`sparkline`.
SPARK_BARS = "▁▂▃▄▅▆▇█"
#: Placeholder for missing (None/NaN) samples inside a sparkline.
SPARK_GAP = "·"


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), v) for k, v in labels.items()))


def sparkline(values: Iterable[Any], width: int = 32) -> str:
    """Render *values* as a unicode sparkline of exactly *width* characters.

    The last *width* samples are shown (one character each); shorter series
    are left-padded with spaces so the strip keeps a stable width and the
    most recent sample is always the rightmost character. ``None``/NaN
    samples render as ``·``. A constant series renders at the lowest bar
    (``▁``) — flat is flat, wherever it sits; non-finite-only and empty
    series render as padding. Never raises.
    """
    if width < 1:
        raise ConfigurationError("sparkline width must be >= 1")
    tail = list(values)[-width:]
    finite = [
        float(v)
        for v in tail
        if v is not None and isinstance(v, (int, float)) and math.isfinite(float(v))
    ]
    low = min(finite) if finite else 0.0
    span = (max(finite) - low) if finite else 0.0
    chars = []
    for value in tail:
        if (
            value is None
            or not isinstance(value, (int, float))
            or not math.isfinite(float(value))
        ):
            chars.append(SPARK_GAP)
        elif span <= 0.0:
            chars.append(SPARK_BARS[0])
        else:
            index = int((float(value) - low) / span * (len(SPARK_BARS) - 1) + 0.5)
            chars.append(SPARK_BARS[min(max(index, 0), len(SPARK_BARS) - 1)])
    return "".join(chars).rjust(width)


class TimeSeries:
    """A bounded ring buffer of ``(time, value)`` samples for one series.

    Appending past ``capacity`` overwrites the oldest sample; memory is
    O(capacity) no matter how long the run (the same guarantee the tracer's
    finished-span ring gives). Times are whatever clock fed the store —
    logical seconds everywhere in this repo.
    """

    __slots__ = ("name", "labels", "capacity", "_points", "_head")

    def __init__(self, name: str, labels: dict | None = None, capacity: int = 240) -> None:
        if capacity < 2:
            raise ConfigurationError("time series capacity must be >= 2")
        self.name = name
        self.labels = dict(labels or {})
        self.capacity = capacity
        self._points: list[tuple[float, float]] = []
        self._head = 0  # index of the oldest point once the ring is full

    def append(self, time: float, value: float) -> None:
        if len(self._points) < self.capacity:
            self._points.append((time, value))
        else:
            self._points[self._head] = (time, value)
            self._head = (self._head + 1) % self.capacity

    def __len__(self) -> int:
        return len(self._points)

    def points(self) -> list[tuple[float, float]]:
        """Samples in chronological order (oldest first)."""
        return self._points[self._head:] + self._points[: self._head]

    def times(self) -> list[float]:
        return [t for t, _ in self.points()]

    def values(self) -> list[float]:
        return [v for _, v in self.points()]

    def last(self) -> tuple[float, float] | None:
        """The most recent ``(time, value)`` sample, or None when empty."""
        if not self._points:
            return None
        return self._points[(self._head - 1) % len(self._points)]

    # -- queries -----------------------------------------------------------
    def delta(self, samples: int = 1) -> float | None:
        """Value change over the last *samples* intervals (None if the ring
        holds fewer than ``samples + 1`` points)."""
        if samples < 1:
            raise ConfigurationError("delta needs samples >= 1")
        pts = self.points()
        if len(pts) <= samples:
            return None
        return pts[-1][1] - pts[-1 - samples][1]

    def rate(self, samples: int = 1) -> float | None:
        """Per-second rate of change over the last *samples* intervals."""
        if samples < 1:
            raise ConfigurationError("rate needs samples >= 1")
        pts = self.points()
        if len(pts) <= samples:
            return None
        elapsed = pts[-1][0] - pts[-1 - samples][0]
        if elapsed <= 0:
            return None
        return (pts[-1][1] - pts[-1 - samples][1]) / elapsed

    def window(self, start: float | None = None, end: float | None = None) -> list[tuple[float, float]]:
        """Samples with ``start <= time <= end`` (either bound optional)."""
        return [
            (t, v)
            for t, v in self.points()
            if (start is None or t >= start) and (end is None or t <= end)
        ]

    def summary(self) -> dict:
        """Count/min/max/mean/last over the retained window, NaN-safe."""
        finite = [v for v in self.values() if v is not None and math.isfinite(v)]
        last = self.last()
        return {
            "count": len(self._points),
            "min": min(finite) if finite else 0.0,
            "max": max(finite) if finite else 0.0,
            "mean": sum(finite) / len(finite) if finite else 0.0,
            "last": last[1] if last is not None else 0.0,
        }

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": {str(k): str(v) for k, v in sorted(self.labels.items())},
            "times": self.times(),
            "values": self.values(),
        }


# -- derivations --------------------------------------------------------------


class Derivation:
    """Base class: computes derived samples at each sampling round.

    ``compute(registry, now, elapsed)`` returns ``(series_name, value)``
    pairs; *elapsed* is the logical time since the previous round (None on
    the first). Implementations keep whatever previous-total state they
    need, and must emit nothing when their source metric was never
    registered — that is what keeps a disabled registry's store empty.
    """

    def compute(self, registry, now: float, elapsed: float | None) -> list[tuple[str, float]]:
        raise NotImplementedError


class CounterRate(Derivation):
    """Per-second rate of a counter name (summed across its labels)."""

    def __init__(self, series: str, metric: str) -> None:
        self.series = series
        self.metric = metric
        self._prev: float | None = None

    def compute(self, registry, now, elapsed):
        if registry.label_cardinality(self.metric) == 0:
            return []
        total = registry.total(self.metric)
        prev, self._prev = self._prev, total
        if prev is None or not elapsed or elapsed <= 0:
            return [(self.series, 0.0)]
        return [(self.series, (total - prev) / elapsed)]


class HitRatio(Derivation):
    """Per-interval hit percentage from a hits/misses counter pair."""

    def __init__(self, series: str, hits_metric: str, misses_metric: str) -> None:
        self.series = series
        self.hits_metric = hits_metric
        self.misses_metric = misses_metric
        self._prev: tuple[float, float] | None = None

    def compute(self, registry, now, elapsed):
        if (
            registry.label_cardinality(self.hits_metric) == 0
            and registry.label_cardinality(self.misses_metric) == 0
        ):
            return []
        totals = (registry.total(self.hits_metric), registry.total(self.misses_metric))
        prev, self._prev = self._prev, totals
        if prev is None:
            return [(self.series, 0.0)]
        hits = totals[0] - prev[0]
        misses = totals[1] - prev[1]
        if hits + misses <= 0:
            return [(self.series, 0.0)]
        return [(self.series, 100.0 * hits / (hits + misses))]


class HistogramQuantile(Derivation):
    """Running quantile of a histogram (cumulative over the whole run)."""

    def __init__(self, series: str, metric: str, q: float, scale: float = 1.0) -> None:
        self.series = series
        self.metric = metric
        self.q = q
        self.scale = scale

    def compute(self, registry, now, elapsed):
        if registry.label_cardinality(self.metric) == 0:
            return []
        histograms = [h for h in registry.series(self.metric) if h.count]
        if not histograms:
            return [(self.series, 0.0)]
        # One unlabeled histogram is the common case; with labels, report
        # the worst series — the operator-relevant tail.
        return [(self.series, max(h.quantile(self.q) for h in histograms) * self.scale)]


class GaugeAggregate(Derivation):
    """Min or max of a labeled gauge's current values, optionally
    restricted to series matching fixed labels.

    ``GaugeAggregate("slo.budget_min_pct", "slo_budget_remaining_pct",
    agg="min")`` emits the *worst* objective's remaining error budget each
    interval — the headline number an SLO dashboard tracks. Emits nothing
    when the gauge was never registered (SLO tracking off), keeping a
    disabled instance's history empty like every other derivation.
    """

    def __init__(self, series: str, metric: str, agg: str = "max",
                 match: dict | None = None) -> None:
        if agg not in ("min", "max"):
            raise ConfigurationError("agg must be 'min' or 'max'")
        self.series = series
        self.metric = metric
        self._agg = min if agg == "min" else max
        self.match = dict(match or {})

    def compute(self, registry, now, elapsed):
        if registry.label_cardinality(self.metric) == 0:
            return []
        values = [
            metric.value
            for metric in registry.series(self.metric)
            if all(
                metric.labels.get(key) == value
                for key, value in self.match.items()
            )
        ]
        if not values:
            return []
        return [(self.series, float(self._agg(values)))]


class LabelSpread(Derivation):
    """Max and mean of a labeled counter's per-interval deltas.

    ``LabelSpread("shard_writes", "esdb_writes_total")`` emits
    ``shard_writes.max`` and ``shard_writes.mean`` — the hot-shard skew
    series: how much the busiest shard outran the average this interval.
    """

    def __init__(self, series: str, metric: str) -> None:
        self.series = series
        self.metric = metric
        self._prev: dict[tuple, float] = {}
        self._seen = False

    def compute(self, registry, now, elapsed):
        if registry.label_cardinality(self.metric) == 0:
            return []
        totals = {
            _label_key(metric.labels): metric.value
            for metric in registry.series(self.metric)
        }
        prev, self._prev = self._prev, totals
        seen, self._seen = self._seen, True
        if not seen:
            return [(f"{self.series}.max", 0.0), (f"{self.series}.mean", 0.0)]
        deltas = [value - prev.get(key, 0.0) for key, value in totals.items()]
        return [
            (f"{self.series}.max", max(deltas) if deltas else 0.0),
            (f"{self.series}.mean", sum(deltas) / len(deltas) if deltas else 0.0),
        ]


# -- the store ----------------------------------------------------------------


class TimeSeriesStore:
    """Ring-buffered time series sampled from a metrics registry.

    ``maybe_sample(now)`` is the only clock input: the first call anchors
    the schedule and takes sample zero; later calls sample whenever *now*
    has advanced past the next interval boundary (one sample per call —
    logical clocks jump, and one fresh sample per jump is what a dashboard
    wants). ``record()`` feeds series directly, bypassing the registry —
    the simulator uses it for its per-tick model series.

    Raw registry sampling records every labeled counter/gauge value and
    every histogram's count; derived series (rates, ratios, quantiles,
    spreads) come from :meth:`add_derivation`. Total series count is capped
    by ``max_series`` (new keys beyond the cap are counted in
    :attr:`dropped_series`, never stored), so a tenant-cardinality explosion
    cannot turn the history buffer into a leak.
    """

    def __init__(
        self,
        registry=None,
        interval: float = 1.0,
        capacity: int = 240,
        max_series: int = 512,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError("sampling interval must be positive")
        if capacity < 2:
            raise ConfigurationError("time series capacity must be >= 2")
        self.registry = registry
        self.interval = float(interval)
        self.capacity = capacity
        self.max_series = max_series
        self.samples_taken = 0
        self.dropped_series = 0
        self._series: dict[tuple[str, tuple], TimeSeries] = {}
        self._derivations: list[Derivation] = []
        self._next_sample: float | None = None
        self._last_sample_time: float | None = None

    # -- series access -----------------------------------------------------
    def series(self, name: str, **labels) -> TimeSeries | None:
        """The series for ``(name, labels)``, created on first use (None
        only when the ``max_series`` cap is hit)."""
        key = (name, _label_key(labels))
        existing = self._series.get(key)
        if existing is not None:
            return existing
        if len(self._series) >= self.max_series:
            self.dropped_series += 1
            return None
        created = TimeSeries(name, labels, capacity=self.capacity)
        self._series[key] = created
        return created

    def get(self, name: str, **labels) -> TimeSeries | None:
        """The exact series, or None if never recorded."""
        return self._series.get((name, _label_key(labels)))

    def names(self) -> list[str]:
        return sorted({name for name, _ in self._series})

    def all_series(self) -> list[TimeSeries]:
        """Every series, sorted by (name, labels) for deterministic output."""
        return [self._series[key] for key in sorted(self._series)]

    def record(self, name: str, time: float, value: float, **labels) -> None:
        """Append one sample directly (no registry involved)."""
        series = self.series(name, **labels)
        if series is not None:
            series.append(time, value)

    # -- queries (store-level conveniences) --------------------------------
    def delta(self, name: str, samples: int = 1, **labels) -> float | None:
        series = self.get(name, **labels)
        return series.delta(samples) if series is not None else None

    def rate(self, name: str, samples: int = 1, **labels) -> float | None:
        series = self.get(name, **labels)
        return series.rate(samples) if series is not None else None

    def window(self, name: str, start: float | None = None, end: float | None = None,
               **labels) -> list[tuple[float, float]]:
        series = self.get(name, **labels)
        return series.window(start, end) if series is not None else []

    # -- sampling ----------------------------------------------------------
    def add_derivation(self, derivation: Derivation) -> "TimeSeriesStore":
        self._derivations.append(derivation)
        return self

    def due(self, now: float) -> bool:
        return self._next_sample is None or now >= self._next_sample

    def maybe_sample(self, now: float) -> bool:
        """Sample iff *now* has reached the next interval boundary."""
        if not self.due(now):
            return False
        self.sample(now)
        return True

    def sample(self, now: float) -> None:
        """Take one sampling round stamped at *now* unconditionally."""
        elapsed = (
            now - self._last_sample_time if self._last_sample_time is not None else None
        )
        registry = self.registry
        if registry is not None:
            # Derived series first: they are the dashboard's headline rows,
            # so they must win the max_series cap over raw labeled series
            # (a 512-shard topology alone can exhaust the cap).
            for derivation in self._derivations:
                for series_name, value in derivation.compute(registry, now, elapsed):
                    self.record(series_name, now, value)
            for name in registry.names():
                kind = registry.kind(name) if hasattr(registry, "kind") else None
                for metric in registry.series(name):
                    if kind == "histogram":
                        self.record(f"{name}.count", now, metric.count, **metric.labels)
                    else:
                        self.record(name, now, metric.value, **metric.labels)
        self.samples_taken += 1
        self._last_sample_time = now
        self._next_sample = now + self.interval

    # -- export ------------------------------------------------------------
    def snapshot(self, names: Iterable[str] | None = None) -> dict:
        """JSON-ready dump: config, counts, and every (or the named) series."""
        wanted = set(names) if names is not None else None
        return {
            "interval": self.interval,
            "capacity": self.capacity,
            "samples": self.samples_taken,
            "dropped_series": self.dropped_series,
            "series": [
                series.to_dict()
                for series in self.all_series()
                if wanted is None or series.name in wanted
            ],
        }


def install_esdb_derivations(store: TimeSeriesStore) -> TimeSeriesStore:
    """Attach the facade's standard derived series to *store*.

    These are the sparkline series ``ESDB.dashboard()`` renders: writes/s
    and queries/s (counter rates), p99 write/query latency in ms (running
    histogram quantiles), the all-level cache hit percentage per interval,
    and the hot-shard max/mean per-interval write spread.
    """
    store.add_derivation(CounterRate("esdb.writes_per_s", "esdb_writes_total"))
    store.add_derivation(CounterRate("esdb.queries_per_s", "esdb_queries_total"))
    store.add_derivation(
        HistogramQuantile("esdb.write_p99_ms", "esdb_write_seconds", 0.99, scale=1e3)
    )
    store.add_derivation(
        HistogramQuantile("esdb.query_p99_ms", "esdb_query_seconds", 0.99, scale=1e3)
    )
    store.add_derivation(
        HitRatio("esdb.cache_hit_pct", "cache_hits_total", "cache_misses_total")
    )
    store.add_derivation(LabelSpread("esdb.shard_writes", "esdb_writes_total"))
    # Chaos/faults series: these counters only exist once a FaultInjector
    # or a retrying WriteClient runs, so ordinary instances emit nothing.
    store.add_derivation(CounterRate("faults.injected_per_s", "faults_injected_total"))
    store.add_derivation(CounterRate("faults.recovered_per_s", "faults_recovered_total"))
    store.add_derivation(
        CounterRate("faults.client_retries_per_s", "write_client_retries_total")
    )
    store.add_derivation(
        CounterRate("faults.dead_letters_per_s", "write_client_dead_letters_total")
    )
    # Tenancy governance series: the tenancy_* counters only exist on a
    # governed instance, so ungoverned instances emit nothing here either.
    store.add_derivation(
        CounterRate("tenancy.admitted_per_s", "tenancy_admitted_total")
    )
    store.add_derivation(CounterRate("tenancy.shed_per_s", "tenancy_shed_total"))
    store.add_derivation(CounterRate("tenancy.queued_per_s", "tenancy_queued_total"))
    # Execution-core series: exec_* counters only exist once a non-serial
    # backend runs tasks (and esdb_bulk_docs_total once bulk_write is
    # used), so a plain serial instance emits nothing here.
    store.add_derivation(CounterRate("exec.tasks_per_s", "exec_tasks_total"))
    store.add_derivation(CounterRate("exec.bulk_docs_per_s", "esdb_bulk_docs_total"))
    store.add_derivation(
        CounterRate("exec.shared_saved_per_s", "exec_shared_saved_total")
    )
    # SLO series: the slo_* gauges only exist on an SLO-enabled instance,
    # so everything else emits nothing here. Budget is aggregated as the
    # *minimum* (the worst objective is the headline); burn rates as the
    # maximum per window.
    store.add_derivation(
        GaugeAggregate("slo.budget_min_pct", "slo_budget_remaining_pct", agg="min")
    )
    store.add_derivation(
        GaugeAggregate(
            "slo.burn_fast_max", "slo_burn_rate", agg="max",
            match={"window": "fast"},
        )
    )
    store.add_derivation(
        GaugeAggregate(
            "slo.burn_slow_max", "slo_burn_rate", agg="max",
            match={"window": "slow"},
        )
    )
    return store


#: The dashboard's sparkline rows: (label, series name) in display order.
DASHBOARD_SERIES = (
    ("writes/s", "esdb.writes_per_s"),
    ("queries/s", "esdb.queries_per_s"),
    ("write p99 ms", "esdb.write_p99_ms"),
    ("query p99 ms", "esdb.query_p99_ms"),
    ("cache hit %", "esdb.cache_hit_pct"),
    ("hot shard max", "esdb.shard_writes.max"),
    ("hot shard mean", "esdb.shard_writes.mean"),
    ("faults/s", "faults.injected_per_s"),
    ("recoveries/s", "faults.recovered_per_s"),
    ("admitted/s", "tenancy.admitted_per_s"),
    ("shed/s", "tenancy.shed_per_s"),
    ("exec tasks/s", "exec.tasks_per_s"),
    ("bulk docs/s", "exec.bulk_docs_per_s"),
    ("budget min %", "slo.budget_min_pct"),
    ("burn fast max", "slo.burn_fast_max"),
    ("burn slow max", "slo.burn_slow_max"),
    ("hot key conc %", "slo_hotkey_concentration_pct"),
    ("arrivals/s", "workload.arrival_rate"),
    ("live tenants", "workload.live_tenants"),
)
