"""Labeled metrics: counters, gauges, and bucketed histograms.

The registry is the measurement substrate for the whole system: every
subsystem (facade, router, consensus, storage engine, optimizer, executor,
replication, clients) registers its counters here, labelable by tenant /
shard / node / policy / operator. Histograms are *bucketed* — observations
land in exponential latency buckets and quantiles (p50/p95/p99) are
interpolated from the bucket counts, so memory stays O(buckets) no matter
how many writes flow through.

Everything is synchronous and allocation-light: hot paths resolve their
metric object once (``registry.counter(...)`` is a dict lookup) and then
call ``inc``/``observe`` which touch a couple of floats. The disabled mode
lives in :mod:`repro.telemetry.runtime` as no-op twins of these classes.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Iterator

from repro.errors import ConfigurationError


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """Return *count* exponentially growing bucket upper bounds.

    ``exponential_buckets(0.001, 2, 4)`` → ``(0.001, 0.002, 0.004, 0.008)``.
    """
    if start <= 0 or factor <= 1 or count < 1:
        raise ConfigurationError(
            "exponential_buckets needs start > 0, factor > 1, count >= 1"
        )
    bounds = []
    bound = start
    for _ in range(count):
        bounds.append(bound)
        bound *= factor
    return tuple(bounds)


#: Default latency buckets: 1 µs .. ~137 s in ×2.4 steps — wide enough for
#: both micro-operations (a posting-list intersect) and whole figure runs.
DEFAULT_BUCKETS = exponential_buckets(1e-6, 2.4, 21)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), v) for k, v in labels.items()))


def _export_labels(labels: dict) -> dict:
    """Stringify label values for serialization (internal keys keep the
    original objects so tenant ids of any hashable type work)."""
    return {str(k): str(v) for k, v in sorted(labels.items(), key=lambda kv: str(kv[0]))}


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """A bucketed histogram with interpolated quantiles.

    Observations are assumed non-negative (durations, sizes, fan-outs).
    ``bounds`` are the inclusive upper edges of the finite buckets; one
    overflow bucket catches everything larger. Exact min/max/sum/count are
    tracked alongside, so ``quantile`` can clamp interpolation to the
    observed range and ``max`` is always exact.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "total",
                 "min_value", "max_value", "exemplars")

    def __init__(self, name: str, labels: dict,
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError("histogram buckets must be strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0
        self.min_value = float("inf")
        self.max_value = float("-inf")
        # bucket index -> (value, trace_id): the latest traced observation
        # per bucket, so a p99 spike in any bucket links to a concrete
        # trace. O(buckets) memory, overwrite-on-arrival.
        self.exemplars: dict[int, tuple[float, str]] = {}

    def observe(self, value: float, trace_id: str | None = None) -> None:
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        index = self._bucket_index(value)
        self.bucket_counts[index] += 1
        if trace_id is not None:
            self.exemplars[index] = (value, trace_id)

    def _bucket_index(self, value: float) -> int:
        # Linear scan is fine: bucket lists are short (~20) and the early
        # buckets (fast operations) hit first.
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                return index
        return len(self.bounds)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Interpolated q-quantile (``0 <= q <= 1``) from bucket counts.

        Within the target bucket the value is linearly interpolated between
        the bucket's edges; results are clamped to the exact observed
        [min, max] so coarse buckets never report impossible values.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        lower = 0.0
        for index, bucket_count in enumerate(self.bucket_counts):
            upper = (
                self.bounds[index]
                if index < len(self.bounds)
                else max(self.max_value, self.bounds[-1])
            )
            if bucket_count:
                cumulative += bucket_count
                if cumulative >= target:
                    # Position of the target rank inside this bucket.
                    fraction = 1.0 - (cumulative - target) / bucket_count
                    value = lower + (upper - lower) * fraction
                    return min(max(value, self.min_value), self.max_value)
            lower = upper
        return self.max_value

    def percentiles(self) -> dict:
        """The summary quantiles every latency report wants."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "max": self.max_value if self.count else 0.0,
        }

    def summary(self) -> dict:
        """The full public summary — count/sum/mean/min/max plus the
        interpolated p50/p95/p99. This is the one API benchmark and
        time-series code should consume; bucket internals stay private."""
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min_value if self.count else 0.0,
            "max": self.max_value if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


def bucket_quantiles(values: Iterable[float], quantiles: tuple[float, ...] = (0.5, 0.95, 0.99),
                     buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> dict:
    """One-shot helper: histogram-bucket quantiles of *values*.

    This is the shared quantile math between the telemetry registry and
    :mod:`repro.sim.metrics` — both report p50/p95/p99 through the same
    bucket-interpolation code path so sim-side and telemetry-side latency
    numbers are comparable.
    """
    histogram = Histogram("_adhoc", {}, buckets=buckets)
    for value in values:
        histogram.observe(value)
    return {q: histogram.quantile(q) for q in quantiles}


def summarize(values: Iterable[float],
              buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> dict:
    """One-shot :meth:`Histogram.summary` of *values*.

    The bench harness and the simulator both summarize ad-hoc duration
    lists through this, so their p50/p95/p99 share the exact
    bucket-interpolation code path of the live telemetry histograms.
    """
    histogram = Histogram("_adhoc", {}, buckets=buckets)
    for value in values:
        histogram.observe(value)
    return histogram.summary()


class MetricsRegistry:
    """Holds every metric series, keyed by (name, sorted label set).

    A metric *name* has one kind (counter, gauge or histogram) and any
    number of label combinations (series). Re-requesting an existing
    series returns the same object, so hot paths can either cache the
    returned metric or look it up each time.
    """

    def __init__(self) -> None:
        self._kinds: dict[str, str] = {}
        self._series: dict[str, dict[tuple, Any]] = {}
        self._buckets: dict[str, tuple[float, ...]] = {}
        self._help: dict[str, str] = {}
        # Registration is check-then-set over shared dicts; executor
        # workers register series concurrently, so creation is serialized.
        # Hot paths cache the returned metric object, so the lock is off
        # the per-operation fast path wherever it matters.
        self._registration = threading.RLock()

    # -- registration ------------------------------------------------------
    def _get(self, kind: str, name: str, labels: dict, factory) -> Any:
        with self._registration:
            known = self._kinds.get(name)
            if known is None:
                self._kinds[name] = kind
                self._series[name] = {}
            elif known != kind:
                raise ConfigurationError(
                    f"metric {name!r} is a {known}, requested as {kind}"
                )
            key = _label_key(labels)
            series = self._series[name]
            metric = series.get(key)
            if metric is None:
                metric = factory()
                series[key] = metric
            return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels, lambda: Counter(name, labels))

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels, lambda: Gauge(name, labels))

    def histogram(self, name: str, buckets: tuple[float, ...] | None = None,
                  **labels) -> Histogram:
        with self._registration:
            if buckets is not None:
                existing = self._buckets.setdefault(name, tuple(buckets))
                if existing != tuple(buckets):
                    raise ConfigurationError(
                        f"histogram {name!r} already registered with different buckets"
                    )
            chosen = self._buckets.get(name, DEFAULT_BUCKETS)
        return self._get(
            "histogram", name, labels, lambda: Histogram(name, labels, buckets=chosen)
        )

    def set_help(self, name: str, text: str) -> None:
        """Attach a one-line description to metric *name* — emitted as the
        ``# HELP`` line by the Prometheus exporter."""
        self._help[name] = " ".join(str(text).split())

    def help_for(self, name: str) -> str:
        """The registered help text for *name*, or a generated default."""
        text = self._help.get(name)
        if text:
            return text
        kind = self._kinds.get(name, "metric")
        return f"{name} ({kind})"

    # -- introspection -----------------------------------------------------
    def names(self) -> list[str]:
        return sorted(self._kinds)

    def kind(self, name: str) -> str | None:
        return self._kinds.get(name)

    def series(self, name: str) -> list[Any]:
        """All series (metric objects) registered under *name*."""
        return list(self._series.get(name, {}).values())

    def iter_series(self) -> Iterator[Any]:
        for name in self.names():
            yield from self.series(name)

    def get(self, name: str, **labels) -> Any | None:
        """The exact series for *labels*, or None if never registered."""
        return self._series.get(name, {}).get(_label_key(labels))

    def value(self, name: str, **labels) -> float:
        """Counter/gauge value of one series (0.0 when absent)."""
        metric = self.get(name, **labels)
        return metric.value if metric is not None else 0.0

    def total(self, name: str) -> float:
        """Sum of a counter/gauge name across all its label combinations."""
        return sum(m.value for m in self.series(name))

    def label_cardinality(self, name: str) -> int:
        """Distinct label combinations registered under *name*."""
        return len(self._series.get(name, {}))

    # -- snapshots ---------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-ready dump of every series (see repro.telemetry.export)."""
        counters, gauges, histograms = [], [], []
        for name in self.names():
            kind = self._kinds[name]
            for metric in self.series(name):
                entry: dict[str, Any] = {
                    "name": name,
                    "labels": _export_labels(metric.labels),
                }
                if kind == "histogram":
                    entry.update(
                        metric.summary(),
                        buckets=[
                            [bound, count]
                            for bound, count in zip(
                                list(metric.bounds) + ["+Inf"], metric.bucket_counts
                            )
                        ],
                    )
                    if metric.exemplars:
                        # Lists, not tuples, so the snapshot JSON round-trips
                        # to an equal object; key absent when never traced so
                        # untraced snapshots keep their pre-exemplar shape.
                        entry["exemplars"] = [
                            [index, value, trace_id]
                            for index, (value, trace_id) in sorted(metric.exemplars.items())
                        ]
                    histograms.append(entry)
                else:
                    entry["value"] = metric.value
                    (counters if kind == "counter" else gauges).append(entry)
        return {"counters": counters, "gauges": gauges, "histograms": histograms}
