"""repro.telemetry — unified metrics, tracing and profiling.

The measurement substrate for the whole reproduction:

* :class:`MetricsRegistry` — labeled counters, gauges and bucketed
  histograms with interpolated p50/p95/p99 quantiles;
* :class:`Tracer` / :class:`Span` — lightweight nested tracing with
  context propagation (a write traces client → router → consensus →
  shard engine → replication; a query traces parse → rewrite → plan →
  per-shard subquery → aggregation);
* :class:`TraceContext` / :class:`TraceIdGenerator` — deterministic
  seed-derived W3C-shaped trace ids with cross-thread propagation and
  head-based sampling (always / ratio / slow-tail);
* :class:`EventLog` — bounded ring of typed operational events
  (throttles, demotions, faults, promotions, slow queries, rule commits)
  stamped with the active trace id;
* exporters — JSON dumps (round-trippable) and Prometheus-style text
  with OpenMetrics trace-id exemplars on histogram buckets;
* a near-zero-overhead disabled mode (:data:`NULL_TELEMETRY`) so
  instrumentation can stay in hot paths permanently.

Entry points: ``Telemetry()`` for an enabled domain, ``NULL_TELEMETRY``
for no-ops, ``set_default_telemetry`` to capture every instance created
afterwards (the ``--profile`` flag of ``repro.experiments`` uses this).
"""

from repro.telemetry.export import (
    parse_json_snapshot,
    parse_prometheus,
    profile_dump,
    to_json,
    to_prometheus,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_quantiles,
    exponential_buckets,
    summarize,
)
from repro.telemetry.timeseries import (
    DASHBOARD_SERIES,
    CounterRate,
    Derivation,
    HistogramQuantile,
    HitRatio,
    LabelSpread,
    TimeSeries,
    TimeSeriesStore,
    install_esdb_derivations,
    sparkline,
)
from repro.telemetry.context import (
    SAMPLERS,
    AlwaysSampler,
    RatioSampler,
    SlowTailSampler,
    TraceConfig,
    TraceContext,
    TraceIdGenerator,
    activate_context,
    build_sampler,
    current_context,
    derive_span_id,
)
from repro.telemetry.events import EVENT_KINDS, Event, EventLog
from repro.telemetry.runtime import (
    NULL_TELEMETRY,
    NullRegistry,
    NullTracer,
    Telemetry,
    default_telemetry,
    set_default_telemetry,
)
from repro.telemetry.tracing import Span, Tracer

__all__ = [
    "TraceContext",
    "TraceConfig",
    "TraceIdGenerator",
    "AlwaysSampler",
    "RatioSampler",
    "SlowTailSampler",
    "SAMPLERS",
    "build_sampler",
    "derive_span_id",
    "current_context",
    "activate_context",
    "Event",
    "EventLog",
    "EVENT_KINDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "bucket_quantiles",
    "exponential_buckets",
    "summarize",
    "TimeSeries",
    "TimeSeriesStore",
    "Derivation",
    "CounterRate",
    "HitRatio",
    "HistogramQuantile",
    "LabelSpread",
    "DASHBOARD_SERIES",
    "install_esdb_derivations",
    "sparkline",
    "Span",
    "Tracer",
    "Telemetry",
    "NULL_TELEMETRY",
    "NullRegistry",
    "NullTracer",
    "default_telemetry",
    "set_default_telemetry",
    "to_json",
    "to_prometheus",
    "parse_json_snapshot",
    "parse_prometheus",
    "profile_dump",
]
