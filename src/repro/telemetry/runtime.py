"""The Telemetry facade, its no-op disabled mode, and the process default.

Instrumented components take a ``telemetry`` argument and default to
:data:`NULL_TELEMETRY` — a singleton whose registry hands out no-op
counters/gauges/histograms and whose tracer returns a shared no-op context
manager. The no-op calls are a few attribute lookups each, so leaving
instrumentation in a hot path costs well under 5% of a write (the overhead
guard in ``tests/test_telemetry.py`` enforces this).

A process-wide *default* telemetry can be installed (the experiments CLI
does this for ``--profile``): :class:`~repro.esdb.ESDB` instances created
while a default is set share its registry, so a whole figure run lands in
one dump.
"""

from __future__ import annotations

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import Span, Tracer


class NullMetric:
    """No-op stand-in for Counter, Gauge and Histogram alike."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float, trace_id: str | None = None) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def percentiles(self) -> dict:
        return {}

    def summary(self) -> dict:
        return {}

    value = 0.0
    count = 0
    total = 0.0


NULL_METRIC = NullMetric()


class NullRegistry:
    """Registry twin whose factories return the shared no-op metric."""

    __slots__ = ()

    def counter(self, name: str, **labels) -> NullMetric:
        return NULL_METRIC

    def gauge(self, name: str, **labels) -> NullMetric:
        return NULL_METRIC

    def histogram(self, name: str, buckets=None, **labels) -> NullMetric:
        return NULL_METRIC

    def set_help(self, name: str, text: str) -> None:
        pass

    def help_for(self, name: str) -> str:
        return ""

    def names(self) -> list:
        return []

    def kind(self, name: str) -> None:
        return None

    def series(self, name: str) -> list:
        return []

    def get(self, name: str, **labels) -> None:
        return None

    def value(self, name: str, **labels) -> float:
        return 0.0

    def total(self, name: str) -> float:
        return 0.0

    def label_cardinality(self, name: str) -> int:
        return 0

    def snapshot(self) -> dict:
        return {"counters": [], "gauges": [], "histograms": []}


class _NullSpanContext:
    """Shared context manager yielding a single throwaway span."""

    __slots__ = ()
    _span = Span("noop")

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """Tracer twin: ``span()`` hands back the shared no-op context."""

    __slots__ = ()
    enabled = False
    finished: tuple = ()

    def span(self, name: str, **tags) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def trace(self, name: str, context=None, sampler=None, **tags) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    @property
    def current(self) -> None:
        return None

    def last_trace(self) -> None:
        return None

    def recent_traces(self, n: int | None = None) -> list:
        return []

    def find_trace(self, trace_id: str) -> None:
        return None


NULL_REGISTRY = NullRegistry()
NULL_TRACER = NullTracer()


class Telemetry:
    """One instrumentation domain: a metrics registry plus a tracer.

    ``Telemetry()`` is enabled (fresh registry + tracer); pass
    ``enabled=False`` — or use :data:`NULL_TELEMETRY` — for the no-op mode.
    """

    __slots__ = ("enabled", "metrics", "tracer")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        if enabled:
            self.metrics = MetricsRegistry()
            self.tracer = Tracer()
        else:
            self.metrics = NULL_REGISTRY
            self.tracer = NULL_TRACER

    @staticmethod
    def disabled() -> "Telemetry":
        return NULL_TELEMETRY


NULL_TELEMETRY = Telemetry(enabled=False)

_default: Telemetry | None = None


def set_default_telemetry(telemetry: Telemetry | None) -> None:
    """Install (or clear, with None) the process-wide default telemetry."""
    global _default
    _default = telemetry


def default_telemetry() -> Telemetry | None:
    """The installed process-wide default, or None."""
    return _default
