"""Structured event log: a bounded ring of typed operational events.

Metrics say *how much*, traces say *where the time went*, and this log
says *what happened*: every discrete operational decision the cluster
makes — a tenant throttled, a write shed, a QoS demotion, a fault
injected or recovered, a replica promoted, a query crossing the slow
threshold, a rule-list commit — lands here as a typed, timestamped,
trace-stamped event. The ring is bounded (old events fall off) but the
per-kind counters are monotone, so rates survive eviction.

Events are emitted only from coordinator code paths (never from worker
threads), so for a seeded workload the sequence of (kind, tenant, shard)
tuples is identical under the serial and threads exec backends — the
same determinism contract the chaos fingerprints pin.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.errors import ConfigurationError

#: Every event kind the system emits, in one place so consumers
#: (dashboard, cat_events, bundle schema) can validate against it.
EVENT_KINDS = (
    "throttle",
    "shed",
    "demotion",
    "fault_inject",
    "fault_recover",
    "promotion",
    "slow_query",
    "rule_commit",
    "slo_burn",
    "slo_recovered",
)


class Event:
    """One operational event: what happened, to whom, under which trace."""

    __slots__ = ("seq", "time", "kind", "tenant", "shard", "trace_id", "detail")

    def __init__(
        self,
        seq: int,
        time: float,
        kind: str,
        tenant: str | None = None,
        shard: int | None = None,
        trace_id: str | None = None,
        detail: dict | None = None,
    ) -> None:
        self.seq = seq
        self.time = time
        self.kind = kind
        self.tenant = tenant
        self.shard = shard
        self.trace_id = trace_id
        self.detail = detail or {}

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "time": self.time,
            "kind": self.kind,
            "tenant": self.tenant,
            "shard": self.shard,
            "trace_id": self.trace_id,
            "detail": dict(self.detail),
        }

    def describe(self) -> str:
        parts = [f"#{self.seq}", self.kind]
        if self.tenant is not None:
            parts.append(f"tenant={self.tenant}")
        if self.shard is not None:
            parts.append(f"shard={self.shard}")
        if self.trace_id is not None:
            parts.append(f"trace={self.trace_id}")
        if self.detail:
            flat = ",".join(
                f"{k}={v:.6g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in sorted(self.detail.items())
            )
            parts.append(flat)
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event({self.describe()})"


class EventLog:
    """Bounded, thread-safe ring of :class:`Event` with monotone counters."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ConfigurationError("event log capacity must be >= 1")
        self.capacity = capacity
        self._events: deque[Event] = deque(maxlen=capacity)
        self._counts: dict[str, int] = {}
        self._seq = 0
        self._lock = threading.Lock()

    def emit(
        self,
        kind: str,
        time: float,
        tenant: str | None = None,
        shard: int | None = None,
        trace_id: str | None = None,
        **detail,
    ) -> Event:
        """Append one event; returns it (mostly for tests)."""
        if kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"unknown event kind {kind!r}; expected one of {EVENT_KINDS}"
            )
        with self._lock:
            seq = self._seq
            self._seq += 1
            event = Event(
                seq, time, kind, tenant=tenant, shard=shard,
                trace_id=trace_id, detail=detail,
            )
            self._events.append(event)
            self._counts[kind] = self._counts.get(kind, 0) + 1
        return event

    def query(
        self,
        kind: str | None = None,
        tenant: str | None = None,
        trace_id: str | None = None,
        limit: int | None = None,
    ) -> list[Event]:
        """Events still in the ring matching every given filter, oldest
        first; *limit* keeps only the most recent matches."""
        with self._lock:
            events = list(self._events)
        matched = [
            event
            for event in events
            if (kind is None or event.kind == kind)
            and (tenant is None or event.tenant == tenant)
            and (trace_id is None or event.trace_id == trace_id)
        ]
        if limit is not None and limit >= 0:
            matched = matched[-limit:]
        return matched

    def tail(self, n: int = 10) -> list[Event]:
        """The n most recent events, oldest first."""
        with self._lock:
            events = list(self._events)
        return events[-n:] if n >= 0 else events

    def counts(self) -> dict[str, int]:
        """Monotone totals per kind since startup (survive ring eviction)."""
        with self._lock:
            return dict(self._counts)

    def to_dicts(self, limit: int | None = None) -> list[dict]:
        return [event.to_dict() for event in self.query(limit=limit)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def total(self) -> int:
        """Events ever emitted (including those evicted from the ring)."""
        with self._lock:
            return self._seq
