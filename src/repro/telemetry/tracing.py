"""Lightweight tracing: spans with context propagation.

A :class:`Tracer` maintains a stack of open spans; ``tracer.span(name)``
opens a child of whatever span is currently active, so a single write can
be traced client → router → consensus → shard engine → replication without
threading a context object through every call. Finished root spans are kept
in a bounded ring buffer (:data:`MAX_FINISHED_TRACES` by default,
configurable per tracer) so long-running processes never accumulate span
trees — the slow log in :mod:`repro.obsv` references recent traces through
:meth:`Tracer.recent_traces`, and ``ESDB.explain_analyze`` hands one back
as its result.

Spans are cheap (one object, two clock reads) but not free — the disabled
mode in :mod:`repro.telemetry.runtime` replaces the tracer with a no-op
twin whose ``span()`` returns a shared singleton context manager.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import deque
from typing import Any, Callable, Iterator

from repro.telemetry.context import _ACTIVE, TraceContext

#: Finished root spans retained per tracer (old traces are discarded).
MAX_FINISHED_TRACES = 128


class Span:
    """One timed stage of an operation, with tags and child spans.

    ``trace_id``/``span_id`` are assigned when the operation runs under a
    :class:`~repro.telemetry.context.TraceContext` (see :meth:`Tracer.trace`);
    they stay None for bare ``tracer.span`` trees so pre-trace callers see
    no difference. ``links`` carries the trace ids of *other* requests this
    span did work for — how a coalesced shared scan credits every
    participating statement.
    """

    __slots__ = ("name", "tags", "start", "end", "children", "trace_id", "span_id", "links")

    def __init__(self, name: str, tags: dict | None = None) -> None:
        self.name = name
        self.tags = tags or {}
        self.start = 0.0
        self.end: float | None = None
        self.children: list[Span] = []
        self.trace_id: str | None = None
        self.span_id: str | None = None
        self.links: list[str] | None = None

    @property
    def duration(self) -> float:
        """Seconds from start to finish (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of this span and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def stage_names(self) -> list[str]:
        """Names of every span in the tree, pre-order."""
        return [span.name for span in self.walk()]

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) whose name equals *name*."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_prefix(self, prefix: str) -> list["Span"]:
        """All spans in the tree whose name starts with *prefix*."""
        return [span for span in self.walk() if span.name.startswith(prefix)]

    def add_link(self, trace_id: str) -> None:
        """Link this span to another request's trace (shared-work credit)."""
        if self.links is None:
            self.links = []
        self.links.append(trace_id)

    def to_dict(self) -> dict:
        """JSON-ready representation of the span tree."""
        out: dict[str, Any] = {"name": self.name, "duration": self.duration}
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.span_id is not None:
            out["span_id"] = self.span_id
        if self.links:
            out["links"] = list(self.links)
        if self.tags:
            out["tags"] = {str(k): str(v) for k, v in self.tags.items()}
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def render(self, indent: int = 0) -> str:
        """Human-readable tree with per-stage timings."""
        tag_text = (
            " {" + ", ".join(f"{k}={v}" for k, v in self.tags.items()) + "}"
            if self.tags
            else ""
        )
        lines = [f"{'  ' * indent}{self.name}: {self.duration * 1000:.3f} ms{tag_text}"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration * 1000:.3f}ms, {len(self.children)} children)"


class _SpanContext:
    """Context manager opening one span under the tracer's current span."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        tracer = self._tracer
        span = self._span
        parent = tracer._stack[-1] if tracer._stack else None
        if parent is not None:
            parent.children.append(span)
        tracer._stack.append(span)
        span.start = tracer.clock()
        return span

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        span = self._span
        span.end = tracer.clock()
        if exc_type is not None:
            _tag_error(span, exc_type)
        stack = tracer._stack
        if stack and stack[-1] is span:
            stack.pop()
        if not stack:
            tracer.finished.append(span)


def _tag_error(span: Span, exc_type: type) -> None:
    """Uniform error tagging, identical on every exit path: ``error`` is
    always the boolean True and the exception class goes to ``error_type``
    (setdefault, so a deliberate tag survives re-raises through parents)."""
    span.tags["error"] = True
    span.tags.setdefault("error_type", exc_type.__name__)


def _assign_span_ids(root: Span, trace_id: str) -> None:
    """Assign deterministic span ids across the finished tree.

    Runs once, at root close, after worker subtrees have been re-parented
    in shard-id order — each id is a pure function of (trace_id, parent
    span id, child index, name), so the ids never depend on which thread
    recorded a span or when it was scheduled. Spans re-parented from a
    worker tracer are covered by the same walk. The digest is inlined
    (same formula as :func:`~repro.telemetry.context.derive_span_id` —
    pinned by tests) because this runs on every traced operation.
    """
    blake2b = hashlib.blake2b
    root.trace_id = trace_id
    pending = [root]
    while pending:
        parent = pending.pop()
        parent_span_id = parent.span_id
        for index, child in enumerate(parent.children):
            child.trace_id = trace_id
            child.span_id = blake2b(
                f"{trace_id}:{parent_span_id}:{index}:{child.name}".encode("utf-8"),
                digest_size=8,
            ).hexdigest()
            pending.append(child)


class _SuppressedSpanContext:
    """Span context handed out while the active trace is head-unsampled:
    yields a fresh detached span (safe to tag) that joins no tree."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return Span("suppressed")

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_SUPPRESSED_SPAN_CONTEXT = _SuppressedSpanContext()


class _RootSpanContext(_SpanContext):
    """Root span of one traced operation.

    On enter: applies the head-sampling decision to the context, stamps
    the span with the context's ids, activates the context on this thread
    (so executor submissions pick it up) and — when unsampled — raises the
    tracer's suppress flag so descendant ``span()`` calls record nothing.
    On exit: restores thread state, finalizes deterministic span ids over
    the assembled tree, and applies the sampler's retention policy to the
    finished ring (errored roots are always retained).
    """

    __slots__ = ("_context", "_sampler", "_prev_context", "_prev_suppress")

    def __init__(
        self,
        tracer: "Tracer",
        span: Span,
        context: TraceContext | None,
        sampler,
    ) -> None:
        super().__init__(tracer, span)
        self._context = context
        self._sampler = sampler
        self._prev_context = None
        self._prev_suppress = False

    def __enter__(self) -> Span:
        tracer = self._tracer
        span = self._span
        context = self._context
        if context is not None:
            if self._sampler is not None:
                context.sampled = bool(self._sampler.sample(context))
            span.trace_id = context.trace_id
            span.span_id = context.span_id
            # Inlined activate_context: this is the per-operation hot path,
            # so the thread-local swap happens without an extra object.
            self._prev_context = getattr(_ACTIVE, "context", None)
            _ACTIVE.context = context
            self._prev_suppress = getattr(tracer._local, "suppress", False)
            tracer._local.suppress = not context.sampled
        return super().__enter__()

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        span = self._span
        span.end = tracer.clock()
        if exc_type is not None:
            _tag_error(span, exc_type)
        stack = tracer._stack
        if stack and stack[-1] is span:
            stack.pop()
        context = self._context
        if context is not None:
            tracer._local.suppress = self._prev_suppress
            _ACTIVE.context = self._prev_context
        if not stack:
            if context is not None:
                _assign_span_ids(span, context.trace_id)
            retained = True
            if exc_type is None and context is not None and self._sampler is not None:
                retained = bool(self._sampler.retain(context, span))
            if retained:
                tracer.finished.append(span)


class Tracer:
    """Opens nested spans and collects finished traces.

    The open-span stack *is* the propagated context. The stack is kept
    per-thread (thread-local), so spans opened on an executor worker nest
    under that worker's own root and never parent across threads; the
    ``finished`` ring buffer is shared (deque appends are atomic).
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        max_finished: int = MAX_FINISHED_TRACES,
    ) -> None:
        if max_finished < 1:
            raise ValueError("max_finished must be >= 1")
        self.clock = clock
        self._local = threading.local()
        self.finished: deque = deque(maxlen=max_finished)

    @property
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **tags):
        """Open a span named *name* as a child of the current span. While
        the active trace is head-unsampled, returns a detached no-op span
        instead — the root keeps its timing, the children cost nothing."""
        if getattr(self._local, "suppress", False):
            return _SUPPRESSED_SPAN_CONTEXT
        return _SpanContext(self, Span(name, tags or None))

    def trace(
        self,
        name: str,
        context: TraceContext | None = None,
        sampler=None,
        **tags,
    ) -> _RootSpanContext:
        """Open the root span of one traced operation.

        With ``context=None`` (tracing disabled) this behaves exactly like
        :meth:`span` — no ids, no sampling, always retained — so the
        pre-trace span trees and chaos fingerprints are bit-identical.
        """
        return _RootSpanContext(self, Span(name, tags or None), context, sampler)

    @property
    def current(self) -> Span | None:
        """The innermost open span, or None outside any trace."""
        return self._stack[-1] if self._stack else None

    def last_trace(self) -> Span | None:
        """The most recently finished root span."""
        return self.finished[-1] if self.finished else None

    def find_trace(self, trace_id: str) -> Span | None:
        """The most recent retained root span for *trace_id*, or None."""
        for span in reversed(self.finished):
            if span.trace_id == trace_id:
                return span
        return None

    def recent_traces(self, n: int | None = None) -> list[Span]:
        """The last *n* finished root spans, oldest first (all retained
        traces when *n* is None). The retention cap bounds both memory and
        the answer's length."""
        spans = list(self.finished)
        if n is None or n >= len(spans):
            return spans
        return spans[len(spans) - n:]
