"""Lightweight tracing: spans with context propagation.

A :class:`Tracer` maintains a stack of open spans; ``tracer.span(name)``
opens a child of whatever span is currently active, so a single write can
be traced client → router → consensus → shard engine → replication without
threading a context object through every call. Finished root spans are kept
in a bounded ring buffer (:data:`MAX_FINISHED_TRACES` by default,
configurable per tracer) so long-running processes never accumulate span
trees — the slow log in :mod:`repro.obsv` references recent traces through
:meth:`Tracer.recent_traces`, and ``ESDB.explain_analyze`` hands one back
as its result.

Spans are cheap (one object, two clock reads) but not free — the disabled
mode in :mod:`repro.telemetry.runtime` replaces the tracer with a no-op
twin whose ``span()`` returns a shared singleton context manager.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Iterator

#: Finished root spans retained per tracer (old traces are discarded).
MAX_FINISHED_TRACES = 128


class Span:
    """One timed stage of an operation, with tags and child spans."""

    __slots__ = ("name", "tags", "start", "end", "children")

    def __init__(self, name: str, tags: dict | None = None) -> None:
        self.name = name
        self.tags = tags or {}
        self.start = 0.0
        self.end: float | None = None
        self.children: list[Span] = []

    @property
    def duration(self) -> float:
        """Seconds from start to finish (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of this span and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def stage_names(self) -> list[str]:
        """Names of every span in the tree, pre-order."""
        return [span.name for span in self.walk()]

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) whose name equals *name*."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_prefix(self, prefix: str) -> list["Span"]:
        """All spans in the tree whose name starts with *prefix*."""
        return [span for span in self.walk() if span.name.startswith(prefix)]

    def to_dict(self) -> dict:
        """JSON-ready representation of the span tree."""
        out: dict[str, Any] = {"name": self.name, "duration": self.duration}
        if self.tags:
            out["tags"] = {str(k): str(v) for k, v in self.tags.items()}
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def render(self, indent: int = 0) -> str:
        """Human-readable tree with per-stage timings."""
        tag_text = (
            " {" + ", ".join(f"{k}={v}" for k, v in self.tags.items()) + "}"
            if self.tags
            else ""
        )
        lines = [f"{'  ' * indent}{self.name}: {self.duration * 1000:.3f} ms{tag_text}"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration * 1000:.3f}ms, {len(self.children)} children)"


class _SpanContext:
    """Context manager opening one span under the tracer's current span."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        tracer = self._tracer
        span = self._span
        parent = tracer._stack[-1] if tracer._stack else None
        if parent is not None:
            parent.children.append(span)
        tracer._stack.append(span)
        span.start = tracer.clock()
        return span

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        span = self._span
        span.end = tracer.clock()
        if exc_type is not None:
            span.tags.setdefault("error", exc_type.__name__)
        stack = tracer._stack
        if stack and stack[-1] is span:
            stack.pop()
        if not stack:
            tracer.finished.append(span)


class Tracer:
    """Opens nested spans and collects finished traces.

    The open-span stack *is* the propagated context. The stack is kept
    per-thread (thread-local), so spans opened on an executor worker nest
    under that worker's own root and never parent across threads; the
    ``finished`` ring buffer is shared (deque appends are atomic).
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        max_finished: int = MAX_FINISHED_TRACES,
    ) -> None:
        if max_finished < 1:
            raise ValueError("max_finished must be >= 1")
        self.clock = clock
        self._local = threading.local()
        self.finished: deque = deque(maxlen=max_finished)

    @property
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **tags) -> _SpanContext:
        """Open a span named *name* as a child of the current span."""
        return _SpanContext(self, Span(name, tags or None))

    @property
    def current(self) -> Span | None:
        """The innermost open span, or None outside any trace."""
        return self._stack[-1] if self._stack else None

    def last_trace(self) -> Span | None:
        """The most recently finished root span."""
        return self.finished[-1] if self.finished else None

    def recent_traces(self, n: int | None = None) -> list[Span]:
        """The last *n* finished root spans, oldest first (all retained
        traces when *n* is None). The retention cap bounds both memory and
        the answer's length."""
        spans = list(self.finished)
        if n is None or n >= len(spans):
            return spans
        return spans[len(spans) - n:]
