"""Deterministic trace contexts: W3C-shaped ids, propagation, sampling.

Every top-level ESDB operation (write, bulk_write, query, execute_batch,
rebalance) is assigned a :class:`TraceContext` — a W3C-traceparent-shaped
``trace_id``/``span_id`` pair — by a :class:`TraceIdGenerator`. Ids are
derived purely from a seed and a monotone per-instance counter (blake2b,
no wall clock, no randomness), so two runs of the same seeded workload
produce byte-identical trace ids and the chaos fingerprints stay stable
with tracing on or off.

The *active* context is carried in a thread-local (:func:`activate_context`
/ :func:`current_context`); :meth:`repro.exec.ShardExecutor.map_ordered`
captures the submitting thread's context and re-activates it inside each
worker task, so per-shard work on the thread backend knows which request
it belongs to — the propagation seam a future wire protocol will serialize
through ``traceparent`` headers.

Head-based sampling keeps full-fidelity tracing affordable: the sampler
decides per trace (from the trace id bits — deterministic, no RNG) whether
child spans are recorded and whether the finished root is retained in the
tracer's ring. ``always`` records everything; ``ratio(p)`` head-drops a
deterministic fraction; ``slow-tail`` records everything but only retains
roots that crossed a latency threshold. Errored roots are always retained
regardless of sampler.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: The only traceparent version this module emits or accepts.
TRACEPARENT_VERSION = "00"

#: Recognized sampler names for :class:`TraceConfig`.
SAMPLERS = ("always", "ratio", "slow-tail")

_TRACE_ID_HEX = 32
_SPAN_ID_HEX = 16


def _digest(payload: str, hex_chars: int) -> str:
    """Deterministic hex digest of *payload*, ``hex_chars`` long."""
    return hashlib.blake2b(
        payload.encode("utf-8"), digest_size=hex_chars // 2
    ).hexdigest()


class TraceContext:
    """One request's identity: trace id, root span id, sampling decision."""

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: str, sampled: bool = True) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled

    def traceparent(self) -> str:
        """The W3C ``traceparent`` header value for this context."""
        flags = "01" if self.sampled else "00"
        return f"{TRACEPARENT_VERSION}-{self.trace_id}-{self.span_id}-{flags}"

    @classmethod
    def parse(cls, header: str) -> "TraceContext":
        """Parse a ``traceparent`` header back into a context."""
        parts = header.strip().split("-")
        if len(parts) != 4:
            raise ConfigurationError(f"malformed traceparent {header!r}")
        version, trace_id, span_id, flags = parts
        if version != TRACEPARENT_VERSION:
            raise ConfigurationError(f"unsupported traceparent version {version!r}")
        if len(trace_id) != _TRACE_ID_HEX or len(span_id) != _SPAN_ID_HEX:
            raise ConfigurationError(f"malformed traceparent ids in {header!r}")
        try:
            int(trace_id, 16), int(span_id, 16), int(flags, 16)
        except ValueError:
            raise ConfigurationError(
                f"non-hex traceparent field in {header!r}"
            ) from None
        return cls(trace_id, span_id, sampled=bool(int(flags, 16) & 0x1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceContext({self.traceparent()})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TraceContext)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
            and self.sampled == other.sampled
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id, self.sampled))


def derive_span_id(trace_id: str, parent_span_id: str, index: int, name: str) -> str:
    """Deterministic span id for the *index*-th child named *name* under
    *parent_span_id* — a pure function of the finished tree's structure,
    so serial and threaded executions of the same trace assign identical
    ids regardless of scheduling order."""
    return _digest(f"{trace_id}:{parent_span_id}:{index}:{name}", _SPAN_ID_HEX)


class TraceIdGenerator:
    """Allocates seed-derived trace contexts from a monotone counter.

    ``next_context(op)`` hashes ``seed : counter : op`` — never the clock,
    never a RNG — so the N-th operation of a seeded workload always gets
    the same trace id, on every backend, on every run.
    """

    __slots__ = ("seed", "_counter", "_lock")

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._counter = 0
        self._lock = threading.Lock()

    @property
    def issued(self) -> int:
        """Contexts allocated so far."""
        return self._counter

    def next_context(self, op: str = "op") -> TraceContext:
        with self._lock:
            counter = self._counter
            self._counter += 1
        trace_id = _digest(f"{self.seed}:{counter}:{op}", _TRACE_ID_HEX)
        # The root span id is the trace id's leading half: already uniform
        # blake2b bits, and one digest per operation instead of two — this
        # runs on the write hot path.
        return TraceContext(trace_id, trace_id[:_SPAN_ID_HEX], sampled=True)


# -- samplers -----------------------------------------------------------------


class AlwaysSampler:
    """Record and retain every trace."""

    name = "always"

    def sample(self, context: TraceContext) -> bool:
        return True

    def retain(self, context: TraceContext, root) -> bool:
        return True


class RatioSampler:
    """Head-based ratio sampling, decided from the trace id bits.

    The decision is a pure function of the trace id (its leading 8 hex
    digits scaled to [0, 1) against *ratio*), so the same trace is sampled
    on every run and on every node that sees it — no coordination, no RNG.
    Unsampled traces keep their (timed, tagged) root span for metrics but
    record no children and are not retained in the finished ring.
    """

    name = "ratio"

    def __init__(self, ratio: float) -> None:
        if not 0.0 <= ratio <= 1.0:
            raise ConfigurationError(f"sampling ratio must be in [0, 1], got {ratio}")
        self.ratio = ratio

    def sample(self, context: TraceContext) -> bool:
        if self.ratio >= 1.0:
            return True
        if self.ratio <= 0.0:
            return False
        return int(context.trace_id[:8], 16) / float(0xFFFFFFFF) < self.ratio

    def retain(self, context: TraceContext, root) -> bool:
        return context.sampled


class SlowTailSampler:
    """Record everything; retain only roots that crossed the threshold.

    The keep-if-slow policy: every trace is recorded in full (children
    included) so a slow one is complete when it finishes, but fast roots
    are dropped from the finished ring — the ring becomes a reservoir of
    exactly the traces an operator wants to look at.
    """

    name = "slow-tail"

    def __init__(self, threshold_seconds: float) -> None:
        if threshold_seconds < 0:
            raise ConfigurationError("slow-tail threshold must be >= 0")
        self.threshold_seconds = threshold_seconds

    def sample(self, context: TraceContext) -> bool:
        return True

    def retain(self, context: TraceContext, root) -> bool:
        return root.duration >= self.threshold_seconds


@dataclass(frozen=True)
class TraceConfig:
    """Configuration of request-scoped tracing (``EsdbConfig.tracing``).

    Attributes:
        enabled: allocate a deterministic :class:`TraceContext` per
            top-level operation. Disabled, the instance allocates no ids
            and every span tree looks exactly as it did before this layer
            existed — the bit-identity the chaos fingerprint tests pin.
        sampler: head-sampling policy — ``"always"`` (default),
            ``"ratio"`` (keep a deterministic ``ratio`` fraction of
            traces) or ``"slow-tail"`` (record all, retain only roots
            slower than ``slow_tail_seconds``).
        ratio: fraction of traces kept by the ``ratio`` sampler.
        slow_tail_seconds: retention threshold for ``slow-tail``.
        seed: trace-id seed. None (default) uses the cluster topology's
            seed, so one seeded scenario fully determines its trace ids.
        events_capacity: ring size of the structured event log
            (:class:`repro.telemetry.events.EventLog`).
    """

    enabled: bool = True
    sampler: str = "always"
    ratio: float = 1.0
    slow_tail_seconds: float = 0.005
    seed: int | None = None
    events_capacity: int = 256

    def __post_init__(self) -> None:
        if self.sampler not in SAMPLERS:
            raise ConfigurationError(
                f"unknown sampler {self.sampler!r}; expected one of {SAMPLERS}"
            )
        if not 0.0 <= self.ratio <= 1.0:
            raise ConfigurationError(f"ratio must be in [0, 1], got {self.ratio}")
        if self.slow_tail_seconds < 0:
            raise ConfigurationError("slow_tail_seconds must be >= 0")
        if self.events_capacity < 1:
            raise ConfigurationError("events_capacity must be >= 1")

    @classmethod
    def off(cls) -> "TraceConfig":
        """Tracing disabled — no contexts, no sampling, pre-trace spans."""
        return cls(enabled=False)


def build_sampler(config: TraceConfig):
    """The sampler object a :class:`TraceConfig` selects."""
    if config.sampler == "ratio":
        return RatioSampler(config.ratio)
    if config.sampler == "slow-tail":
        return SlowTailSampler(config.slow_tail_seconds)
    return AlwaysSampler()


# -- thread-local propagation -------------------------------------------------

_ACTIVE = threading.local()


def current_context() -> TraceContext | None:
    """The context active on this thread, or None outside any trace."""
    return getattr(_ACTIVE, "context", None)


class _Activation:
    """Context manager installing a context on the current thread."""

    __slots__ = ("_context", "_previous")

    def __init__(self, context: TraceContext | None) -> None:
        self._context = context
        self._previous = None

    def __enter__(self) -> TraceContext | None:
        self._previous = getattr(_ACTIVE, "context", None)
        _ACTIVE.context = self._context
        return self._context

    def __exit__(self, exc_type, exc, tb) -> None:
        _ACTIVE.context = self._previous


def activate_context(context: TraceContext | None) -> _Activation:
    """Make *context* the current thread's active trace context for the
    duration of the ``with`` block (None deactivates). The executor uses
    this to re-home the coordinator's context onto worker threads."""
    return _Activation(context)
