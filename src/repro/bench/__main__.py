"""``python -m repro.bench`` — run the continuous benchmark suite.

Examples::

    python -m repro.bench --list
    python -m repro.bench --quick
    python -m repro.bench write.routing.dynamic query.cache.warm
    python -m repro.bench --quick --compare BENCH_BASELINE.json
    python -m repro.bench --update-baseline

Results always land in a schema-versioned, env-stamped JSON file
(``--out``, default ``BENCH_RESULTS.json``). ``--compare`` diffs the run
against a baseline payload and exits non-zero when any metric regresses
beyond ``--tolerance`` — unless ``--report-only`` turns regressions into
annotations (the CI smoke mode, where machine noise must not fail the
build). ``--update-baseline`` additionally writes the run as the new
``BENCH_BASELINE.json``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.compare import compare_results
from repro.bench.harness import (
    get,
    registered,
    render_results,
    run_scenarios,
    validate_results,
)
from repro.errors import ConfigurationError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run registered performance scenarios and track regressions.",
    )
    parser.add_argument(
        "scenarios", nargs="*",
        help="scenario names to run (default: all; see --list)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered scenarios and exit"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced iteration counts (CI smoke / tests); flagged in the output",
    )
    parser.add_argument(
        "--out", default="BENCH_RESULTS.json",
        help="results file to write (default: BENCH_RESULTS.json)",
    )
    parser.add_argument(
        "--compare", metavar="BASELINE_JSON", default=None,
        help="compare against a baseline payload; exit 1 on regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="relative regression tolerance for --compare (default: 0.25)",
    )
    parser.add_argument(
        "--report-only", action="store_true",
        help="with --compare: print regressions but always exit 0",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="also write this run's results to --baseline-out",
    )
    parser.add_argument(
        "--baseline-out", default="BENCH_BASELINE.json",
        help="baseline file for --update-baseline (default: BENCH_BASELINE.json)",
    )
    return parser


def main(argv: list | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name in registered():
            bench = get(name)
            print(f"{name:<28} [{bench.family}] {bench.description}")
        return 0
    if args.tolerance < 0:
        print("--tolerance must be >= 0", file=sys.stderr)
        return 2
    try:
        names = args.scenarios or None
        if names:
            for name in names:
                get(name)  # fail fast on typos, before any scenario runs
        payload = run_scenarios(names=names, quick=args.quick, progress=print)
    except ConfigurationError as error:
        print(str(error), file=sys.stderr)
        return 2
    errors = validate_results(payload)
    if errors:  # should be impossible; guards the schema contract in CI
        for problem in errors:
            print(f"schema error: {problem}", file=sys.stderr)
        return 2
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(render_results(payload))
    print(f"results written to {args.out}")
    if args.update_baseline:
        with open(args.baseline_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"baseline updated: {args.baseline_out}")
    if args.compare is not None:
        try:
            with open(args.compare) as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"cannot read baseline {args.compare}: {error}", file=sys.stderr)
            return 2
        report = compare_results(payload, baseline, tolerance=args.tolerance)
        print(report.render())
        if not report.ok and not args.report_only:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
