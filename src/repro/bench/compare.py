"""Baseline comparison and regression detection.

``compare_results(current, baseline, tolerance)`` walks every metric the
two payloads share and classifies it using the metric's declared
*direction*: a ``higher``-is-better metric regresses when it falls more
than *tolerance* (relative) below the baseline; a ``lower``-is-better one
regresses when it rises more than *tolerance* above it. Improvements are
flagged symmetrically so a PR can cite its headline win from the same
report that guards against losses. Scenarios present on only one side are
reported but never fail the comparison (suites grow; baselines lag).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MetricDelta:
    """One metric compared across the two payloads."""

    scenario: str
    metric: str
    direction: str
    baseline: float
    current: float
    change: float | None  # signed relative change, None when baseline == 0
    regression: bool
    improvement: bool

    def describe(self) -> str:
        change = f"{self.change:+.1%}" if self.change is not None else "n/a"
        flag = "REGRESSION" if self.regression else (
            "improved" if self.improvement else "ok"
        )
        return (
            f"{self.scenario}.{self.metric} [{self.direction}] "
            f"{self.baseline:.3f} -> {self.current:.3f} ({change}) {flag}"
        )


@dataclass(frozen=True)
class ComparisonReport:
    tolerance: float
    deltas: list[MetricDelta]
    missing_scenarios: list[str]  # in baseline, absent from current
    new_scenarios: list[str]  # in current, absent from baseline

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regression]

    @property
    def improvements(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.improvement]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"bench comparison: {len(self.deltas)} metrics @ tolerance "
            f"{self.tolerance:.0%} -> {len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s)"
        ]
        for delta in self.regressions:
            lines.append(f"  !! {delta.describe()}")
        for delta in self.improvements:
            lines.append(f"  ++ {delta.describe()}")
        if self.missing_scenarios:
            lines.append(
                "  baseline-only scenarios (not compared): "
                + ", ".join(self.missing_scenarios)
            )
        if self.new_scenarios:
            lines.append(
                "  new scenarios (no baseline yet): " + ", ".join(self.new_scenarios)
            )
        if self.ok:
            lines.append("  no regressions beyond tolerance")
        return "\n".join(lines)


def _classify(direction: str, baseline: float, current: float,
              tolerance: float) -> tuple[float | None, bool, bool]:
    """(relative change, regression?, improvement?) for one metric pair."""
    if baseline == 0.0:
        # No relative scale: a zero baseline can flag nothing reliably.
        return None, False, False
    change = (current - baseline) / abs(baseline)
    worse = -change if direction == "higher" else change
    return change, worse > tolerance, worse < -tolerance


def compare_results(current: dict, baseline: dict,
                    tolerance: float = 0.25) -> ComparisonReport:
    """Compare two results payloads; see the module docstring for rules."""
    current_scenarios = current.get("scenarios", {})
    baseline_scenarios = baseline.get("scenarios", {})
    deltas: list[MetricDelta] = []
    for name in sorted(set(current_scenarios) & set(baseline_scenarios)):
        current_metrics = current_scenarios[name].get("metrics", {})
        baseline_metrics = baseline_scenarios[name].get("metrics", {})
        for metric_name in sorted(set(current_metrics) & set(baseline_metrics)):
            cur = current_metrics[metric_name]
            base = baseline_metrics[metric_name]
            direction = cur.get("direction", base.get("direction", "lower"))
            change, regression, improvement = _classify(
                direction, float(base["value"]), float(cur["value"]), tolerance
            )
            deltas.append(
                MetricDelta(
                    scenario=name,
                    metric=metric_name,
                    direction=direction,
                    baseline=float(base["value"]),
                    current=float(cur["value"]),
                    change=change,
                    regression=regression,
                    improvement=improvement,
                )
            )
    return ComparisonReport(
        tolerance=tolerance,
        deltas=deltas,
        missing_scenarios=sorted(set(baseline_scenarios) - set(current_scenarios)),
        new_scenarios=sorted(set(current_scenarios) - set(baseline_scenarios)),
    )
