"""repro.bench — the continuous benchmark suite with regression detection.

The performance-history counterpart to :mod:`repro.telemetry.timeseries`:
where the time-series store tracks one *live instance* over its run, this
package tracks the *codebase* over its PRs. Registered scenarios span the
write path (every routing policy under Zipf skew), the query path (cold
vs. warm caches, optimizer on/off), storage micro-operations (index /
flush / merge) and the write simulator; each emits throughput and
p50/p95/p99 through the shared telemetry quantile math into a
schema-versioned, env-stamped ``BENCH_RESULTS.json``.

``python -m repro.bench --compare BENCH_BASELINE.json`` flags any metric
that moved the wrong way beyond a tolerance and exits non-zero — the gate
every future "made X faster" PR proves its claim against.
"""

from repro.bench.compare import ComparisonReport, MetricDelta, compare_results
from repro.bench.harness import (
    FAMILIES,
    SCHEMA_VERSION,
    BenchScenario,
    Metric,
    ScenarioResult,
    env_stamp,
    families_covered,
    get,
    latency_metrics,
    registered,
    render_results,
    run_scenarios,
    scenario,
    time_ops,
    validate_results,
)

__all__ = [
    "BenchScenario",
    "ComparisonReport",
    "FAMILIES",
    "Metric",
    "MetricDelta",
    "SCHEMA_VERSION",
    "ScenarioResult",
    "compare_results",
    "env_stamp",
    "families_covered",
    "get",
    "latency_metrics",
    "registered",
    "render_results",
    "run_scenarios",
    "scenario",
    "time_ops",
    "validate_results",
]
