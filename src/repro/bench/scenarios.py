"""The registered benchmark scenarios.

Five families, mirroring the paper's evaluation axes plus fault tolerance:

* ``write.*`` — the facade write path under Zipf skew, one scenario per
  routing policy (Figs 10–13: the policies are the paper's headline
  comparison);
* ``query.*`` — end-to-end SQL through parse → plan → fan-out →
  aggregate, cold vs. warm caches and optimizer on vs. off (Figs 16–17);
* ``storage.*`` — shard-engine micro-operations: buffer indexing, flush
  (refresh + translog checkpoint), and segment merging (§3.3);
* ``sim.*`` — the fluid-flow write simulation; its *model* outputs
  (throughput, delay) are bit-deterministic, so they double as exact
  regression tripwires on top of the wall-clock tick rate;
* ``chaos.*`` — a seeded :mod:`repro.faults` scenario (crash the primary
  mid-workload, promote, heal); acked-write and invariant counts are
  deterministic tripwires, wall throughput tracks recovery cost;
* ``tenancy.*`` — multi-tenant governance: admission overhead, noisy-
  neighbor isolation, QoS-class ordering;
* ``exec.*`` — the concurrent execution core: bulk_write vs a
  per-document loop, scatter-gather fan-out latency by shard count and
  backend, and shared-scan query coalescing;
* ``trace.*`` — request-scoped distributed tracing: the write-path cost
  of trace ids, spans, events and exemplars vs. ``TraceConfig.off()``;
* ``workload.*`` — arrival-process realism: generation rate of the
  Poisson/bursty/diurnal streams (with exact event-count tripwires), and
  end-to-end replay of a recorded bursty + churn v2 trace through the
  bulk write path.

Every scenario accepts ``quick`` (reduced iteration counts for CI smoke
runs and tests) and returns the standard throughput + p50/p95/p99 metric
set from :func:`repro.bench.harness.latency_metrics`.
"""

from __future__ import annotations

import gc
import time

from repro.bench.harness import (
    Metric,
    ScenarioResult,
    latency_metrics,
    scenario,
    time_ops,
)

#: Hot tenant pinned into every ingest so tenant-scoped queries hit data.
HOT_TENANT = "bench-hot"


def _bench_db(cache=None, optimizer_enabled: bool = True):
    """A small, fully wired ESDB instance for benchmarking."""
    from repro.cluster import ClusterTopology
    from repro.esdb import ESDB, EsdbConfig

    config = EsdbConfig(
        topology=ClusterTopology(num_nodes=2, num_shards=8, replicas_per_shard=0),
        optimizer_enabled=optimizer_enabled,
        consensus_interval=1.0,
        **({"cache": cache} if cache is not None else {}),
    )
    return ESDB(config)


def _generator(seed: int = 0):
    from repro.workload.generator import TransactionLogGenerator, WorkloadConfig

    return TransactionLogGenerator(WorkloadConfig(num_tenants=1_000, seed=seed))


def _documents(count: int, seed: int = 0, hot_every: int = 3) -> list[dict]:
    """Zipf-skewed documents with every *hot_every*-th write pinned to the
    bench hot tenant (guarantees a hotspot and query hits)."""
    generator = _generator(seed)
    docs = []
    for i in range(count):
        tenant = HOT_TENANT if i % hot_every == 0 else None
        docs.append(generator.generate(created_time=i * 0.02, tenant_id=tenant))
    return docs


# -- write family -------------------------------------------------------------


def _write_scenario(policy_factory, quick: bool, rebalance: bool = False) -> ScenarioResult:
    from repro.esdb import ESDB, EsdbConfig
    from repro.cluster import ClusterTopology

    count = 300 if quick else 1500
    docs = _documents(count)
    db = ESDB(
        EsdbConfig(
            topology=ClusterTopology(num_nodes=2, num_shards=8, replicas_per_shard=0),
            consensus_interval=1.0,
        ),
        policy=policy_factory(8),
    )

    def op(i: int) -> None:
        db.write(docs[i])

    durations = []
    for start in range(0, count, 100):
        durations.extend(time_ops(lambda i, base=start: op(base + i),
                                  min(100, count - start)))
        if rebalance:
            db.rebalance()
    metrics = latency_metrics(durations)
    return ScenarioResult(
        metrics,
        meta={"writes": count, "shards": 8, "policy": db.policy.name},
    )


@scenario("write.routing.hash", "write",
          "facade write path, single-hash routing, Zipf-skewed tenants")
def write_hash(quick: bool) -> ScenarioResult:
    from repro.routing import HashRouting

    return _write_scenario(HashRouting, quick)


@scenario("write.routing.double", "write",
          "facade write path, double-hash routing (static offset spread)")
def write_double(quick: bool) -> ScenarioResult:
    from repro.routing import DoubleHashRouting

    return _write_scenario(lambda n: DoubleHashRouting(n, offset=4), quick)


@scenario("write.routing.dynamic", "write",
          "facade write path, dynamic secondary hashing with balance rounds")
def write_dynamic(quick: bool) -> ScenarioResult:
    from repro.routing import DynamicSecondaryHashRouting

    return _write_scenario(DynamicSecondaryHashRouting, quick, rebalance=True)


# -- query family -------------------------------------------------------------

_QUERY_SET = (
    f"SELECT * FROM transaction_logs WHERE tenant_id = '{HOT_TENANT}' LIMIT 10",
    f"SELECT status, COUNT(*) FROM transaction_logs "
    f"WHERE tenant_id = '{HOT_TENANT}' GROUP BY status",
    f"SELECT * FROM transaction_logs WHERE tenant_id = '{HOT_TENANT}' "
    f"AND status = 1 ORDER BY created_time DESC LIMIT 5",
    "SELECT COUNT(*) FROM transaction_logs WHERE quantity >= 5",
    "SELECT * FROM transaction_logs WHERE amount <= 500 AND quantity <= 3 LIMIT 20",
)


def _query_scenario(cache, optimizer_enabled: bool, quick: bool,
                    warm: bool) -> ScenarioResult:
    count = 240 if quick else 1000
    rounds = 3 if quick else 8
    db = _bench_db(cache=cache, optimizer_enabled=optimizer_enabled)
    for doc in _documents(count, seed=1):
        db.write(doc)
    db.refresh()
    if warm:
        for sql in _QUERY_SET:  # priming round fills all cache levels
            db.execute_sql(sql)
    statements = [sql for _ in range(rounds) for sql in _QUERY_SET]

    durations = time_ops(lambda i: db.execute_sql(statements[i]), len(statements))
    metrics = latency_metrics(durations)
    hits = db.telemetry.metrics.total("cache_hits_total")
    misses = db.telemetry.metrics.total("cache_misses_total")
    return ScenarioResult(
        metrics,
        meta={
            "docs": count,
            "queries": len(statements),
            "cache_hits": int(hits),
            "cache_misses": int(misses),
        },
    )


@scenario("query.cache.cold", "query",
          "SQL query set with every cache level disabled (cold baseline)")
def query_cold(quick: bool) -> ScenarioResult:
    from repro.cache import CacheConfig

    return _query_scenario(CacheConfig.off(), True, quick, warm=False)


@scenario("query.cache.warm", "query",
          "SQL query set against warmed filter/request/result caches")
def query_warm(quick: bool) -> ScenarioResult:
    return _query_scenario(None, True, quick, warm=True)


@scenario("query.optimizer.on", "query",
          "SQL query set with the rule-based optimizer, caches off")
def query_optimizer_on(quick: bool) -> ScenarioResult:
    from repro.cache import CacheConfig

    return _query_scenario(CacheConfig.off(), True, quick, warm=False)


@scenario("query.optimizer.off", "query",
          "SQL query set without the optimizer (naive plans), caches off")
def query_optimizer_off(quick: bool) -> ScenarioResult:
    from repro.cache import CacheConfig

    return _query_scenario(CacheConfig.off(), False, quick, warm=False)


# -- storage family -----------------------------------------------------------


def _engine():
    from repro.storage import EngineConfig, Schema, ShardEngine

    config = EngineConfig(
        schema=Schema.transaction_logs(),
        composite_columns=(("tenant_id", "created_time"),),
        scan_columns=frozenset({"status", "quantity"}),
        auto_refresh_every=None,
    )
    return ShardEngine(config, shard_id=0)


@scenario("storage.index", "storage",
          "shard-engine document indexing into the write buffer")
def storage_index(quick: bool) -> ScenarioResult:
    count = 600 if quick else 3000
    docs = _documents(count, seed=2)
    engine = _engine()
    durations = time_ops(lambda i: engine.index(docs[i]), count)
    return ScenarioResult(latency_metrics(durations), meta={"docs": count})


@scenario("storage.flush", "storage",
          "flush: refresh buffered docs into a segment + translog checkpoint")
def storage_flush(quick: bool) -> ScenarioResult:
    batches = 20 if quick else 60
    batch_size = 30
    docs = _documents(batches * batch_size, seed=3)
    engine = _engine()

    def op(i: int) -> None:
        engine.flush()

    durations = []
    for batch in range(batches):
        for doc in docs[batch * batch_size : (batch + 1) * batch_size]:
            engine.index(doc)
        durations.extend(time_ops(op, 1))
    return ScenarioResult(
        latency_metrics(durations),
        meta={"batches": batches, "batch_size": batch_size,
              "segments": engine.segment_count()},
    )


@scenario("storage.merge", "storage",
          "tiered segment merges over a pre-built many-segment shard")
def storage_merge(quick: bool) -> ScenarioResult:
    from repro.storage.merge import TieredMergePolicy

    segments = 24 if quick else 64
    segment_docs = 25
    docs = _documents(segments * segment_docs, seed=4)
    engine = _engine()
    # Build the segment pile with merging suppressed, then merge it down.
    engine.merge_policy = TieredMergePolicy(merge_factor=10_000)
    for index in range(segments):
        for doc in docs[index * segment_docs : (index + 1) * segment_docs]:
            engine.index(doc)
        engine.refresh()
    engine.merge_policy = TieredMergePolicy(merge_factor=4)
    durations = []
    merges = 0
    while True:
        start = time.perf_counter()
        merged = engine.maybe_merge()
        elapsed = time.perf_counter() - start
        if merged is None:
            break
        durations.append(elapsed)
        merges += 1
    return ScenarioResult(
        latency_metrics(durations),
        meta={"initial_segments": segments, "merges": merges,
              "final_segments": engine.segment_count()},
    )


# -- chaos family -------------------------------------------------------------


@scenario("chaos.crash_failover", "chaos",
          "seeded chaos run: blackhole + node crash + primary crash mid-workload, "
          "then full recovery with invariant checks")
def chaos_crash_failover(quick: bool) -> ScenarioResult:
    from repro.faults import ChaosConfig, ChaosRunner
    from repro.faults.__main__ import build_failover_plan

    steps = 160 if quick else 600
    shards = 8
    plan = build_failover_plan(seed=42, steps=steps, num_shards=shards)
    runner = ChaosRunner(
        plan,
        ChaosConfig(steps=steps, num_nodes=3, num_shards=shards, replicas_per_shard=2),
    )
    start = time.perf_counter()
    report = runner.run()
    elapsed = time.perf_counter() - start
    return ScenarioResult(
        {
            "wall_steps_per_s": Metric(
                steps / elapsed if elapsed > 0 else 0.0, "steps/s", "higher"
            ),
            # Deterministic tripwires: same seed must ack every write and
            # recover with zero invariant violations.
            "acked_writes": Metric(float(report.writes_acked), "writes", "higher"),
            "invariant_violations": Metric(
                float(len(report.violations)), "violations", "lower"
            ),
        },
        meta={
            "seed": plan.seed,
            "faults_injected": report.faults_injected,
            "faults_recovered": report.faults_recovered,
            "dead_letters_redriven": report.dead_letters_redriven,
            "fingerprint": report.fingerprint(),
        },
    )


# -- sim family ---------------------------------------------------------------


@scenario("sim.write_static", "sim",
          "fluid-flow write simulation, dynamic policy under constant rate")
def sim_write_static(quick: bool) -> ScenarioResult:
    from repro.routing import DynamicSecondaryHashRouting
    from repro.sim import SimulationConfig, WriteSimulation
    from repro.workload.scenarios import StaticScenario

    duration = 40.0 if quick else 150.0
    config = SimulationConfig(
        num_nodes=4,
        num_shards=64,
        node_capacity=5_000.0,
        sample_per_tick=300 if quick else 800,
        balance_window=10.0,
        consensus_interval=5.0,
    )
    simulation = WriteSimulation(
        DynamicSecondaryHashRouting(config.num_shards),
        StaticScenario(rate=9_000.0, duration=duration),
        config=config,
    )
    start = time.perf_counter()
    report = simulation.run()
    elapsed = time.perf_counter() - start
    ticks = len(simulation.metrics.samples)
    return ScenarioResult(
        {
            "wall_ticks_per_s": Metric(
                ticks / elapsed if elapsed > 0 else 0.0, "ticks/s", "higher"
            ),
            # Model outputs are deterministic (seeded): exact tripwires.
            "model_throughput": Metric(report.throughput, "writes/s", "higher"),
            "model_delay_p99_s": Metric(report.delay_p99, "s", "lower"),
            "model_max_delay_s": Metric(report.max_delay, "s", "lower"),
        },
        meta={
            "ticks": ticks,
            "rules_committed": len(simulation.rule_commits),
            "history_series": len(simulation.timeseries.all_series()),
        },
    )


# -- tenancy family -----------------------------------------------------------


def _tenancy_config(**overrides):
    from repro.tenancy import TenancyConfig

    params = dict(
        enabled=True,
        write_rate=10.0,
        write_burst=50.0,
        query_rate=1_000.0,
        query_burst=100.0,
        queue_capacity=32,
    )
    params.update(overrides)
    return TenancyConfig(**params)


def _governed_db(tenancy=None, cache=None, auto_refresh_every=None):
    from repro.cluster import ClusterTopology
    from repro.esdb import ESDB, EsdbConfig

    extras = {}
    if tenancy is not None:
        extras["tenancy"] = tenancy
    if cache is not None:
        extras["cache"] = cache
    if auto_refresh_every is not None:
        extras["auto_refresh_every"] = auto_refresh_every
    return ESDB(
        EsdbConfig(
            topology=ClusterTopology(num_nodes=2, num_shards=8, replicas_per_shard=0),
            consensus_interval=1.0,
            **extras,
        )
    )


def _overlapping_flood_tenant(db) -> str:
    """A flood tenant routed onto the victim's shard(s) — without shard
    overlap a flood cannot hurt the victim's tenant-scoped reads, and the
    point of the scenario is that it hurts the *shared* shards."""
    victim = set(db.policy.query_shards(HOT_TENANT))
    for i in range(64):
        candidate = f"bench-flood-{i}"
        if set(db.policy.query_shards(candidate)) & victim:
            return candidate
    return "bench-flood-0"


@scenario("tenancy.overhead", "tenancy",
          "write+query workload on a governed instance (generous budgets, "
          "nothing sheds) vs. the identical ungoverned run")
def tenancy_overhead(quick: bool) -> ScenarioResult:
    from repro.errors import TenantThrottledError

    count = 300 if quick else 1500
    queries = 30 if quick else 120
    # Budgets far above the offered load: this measures pure admission
    # bookkeeping overhead, not throttling.
    governed = _governed_db(
        _tenancy_config(
            write_rate=1e6, write_burst=1e6, query_rate=1e6, query_burst=1e6
        )
    )
    ungoverned = _governed_db()
    elapsed = {}
    for label, db in (("governed", governed), ("ungoverned", ungoverned)):
        docs = _documents(count, seed=7)
        sql = (
            f"SELECT * FROM transaction_logs WHERE tenant_id = '{HOT_TENANT}' "
            f"LIMIT 10"
        )
        gc.collect()  # don't bill one phase for the other phase's garbage
        gc.disable()
        start = time.perf_counter()
        try:
            for doc in docs:
                db.write(doc)
            db.refresh()
            for _ in range(queries):
                db.execute_sql(sql)
        except TenantThrottledError as exc:  # pragma: no cover - config bug
            raise AssertionError(f"overhead run must never shed: {exc}") from exc
        finally:
            gc.enable()
        elapsed[label] = time.perf_counter() - start
    ops = count + queries
    overhead_pct = 100.0 * (elapsed["governed"] - elapsed["ungoverned"]) / (
        elapsed["ungoverned"] or 1.0
    )
    return ScenarioResult(
        {
            "ungoverned_ops_per_s": Metric(
                ops / elapsed["ungoverned"] if elapsed["ungoverned"] else 0.0,
                "ops/s", "higher",
            ),
            "governed_ops_per_s": Metric(
                ops / elapsed["governed"] if elapsed["governed"] else 0.0,
                "ops/s", "higher",
            ),
            "governance_overhead_pct": Metric(overhead_pct, "%", "lower"),
        },
        meta={"writes": count, "queries": queries,
              "governed_shed": governed.governor.totals()["shed"]},
    )


def _noisy_neighbor_run(flood_per_doc: int, tenancy, count: int,
                        query_rounds: int, victim_every: int):
    """Ingest a victim workload (HOT_TENANT every *victim_every*-th doc)
    with ``flood_per_doc`` extra flood-tenant writes per document, then
    measure the victim's analytical query latencies. Returns (durations,
    flood_throttled, victim_shed).

    The measured query is a cross-tenant aggregate scan with caches off:
    its cost is proportional to *total* indexed docs, so an unthrottled
    flood inflates it directly. (A tenant-scoped point query would hide
    the damage — the composite (tenant, time) index keeps it O(matched)
    regardless of how much a neighbor writes.) The flood tenant is chosen
    to share a shard with the victim so the tenant-scoped write paths
    collide too."""
    from repro.cache import CacheConfig
    from repro.errors import TenantThrottledError

    db = _governed_db(tenancy, cache=CacheConfig.off(), auto_refresh_every=32)
    flood_tenant = _overlapping_flood_tenant(db)
    generator = _generator(seed=11)
    flood_throttled = 0
    victim_shed = 0
    step = 0
    for i in range(count):
        tenant = HOT_TENANT if i % victim_every == 0 else None
        doc = generator.generate(created_time=step * 0.02, tenant_id=tenant)
        step += 1
        try:
            db.write(doc)
        except TenantThrottledError:
            victim_shed += 1
        for _ in range(flood_per_doc):
            flood = generator.generate(
                created_time=step * 0.02, tenant_id=flood_tenant
            )
            step += 1
            try:
                db.write(flood)
            except TenantThrottledError:
                flood_throttled += 1
    db.refresh()
    sql = (
        "SELECT status, COUNT(*) FROM transaction_logs "
        "WHERE quantity >= 2 GROUP BY status"
    )
    db.execute_sql(sql)  # warmup: keep cold-start costs out of the quantiles
    gc.collect()  # ...and collection pauses from earlier scenarios' garbage
    gc.disable()  # a gen-2 sweep mid-loop would masquerade as a slow query
    try:
        durations = time_ops(lambda i: db.execute_sql(sql), query_rounds)
    finally:
        gc.enable()
    return durations, flood_throttled, victim_shed


@scenario("tenancy.noisy_neighbor", "tenancy",
          "victim-tenant query p99 with a flooding tenant: no-flood baseline "
          "vs. ungoverned flood vs. governed flood (the isolation headline)")
def tenancy_noisy_neighbor(quick: bool) -> ScenarioResult:
    from repro.telemetry import summarize

    count = 150 if quick else 600
    query_rounds = 40 if quick else 150
    # ~13 victim docs in both modes: the victim exists to prove zero sheds
    # (the measured scan is cross-tenant), and a constant volume keeps it
    # comfortably inside the same indexed-bytes quota at either scale.
    victim_every = 12 if quick else 48
    flood = 6
    config = _tenancy_config(
        write_rate=8.0,
        write_burst=16.0,
        query_rate=1e6,  # the victim's queries are never the throttle target
        query_burst=1e6,
        # Above the hottest zipf background tenant (deterministic for the
        # fixed generator seed, so the thin margin is safe) but far below
        # the flood's offered volume: only the flood trips it.
        indexed_bytes_quota=count * 60,
        quota_window_seconds=600.0,
    )
    # The baseline is GOVERNED but flood-free, so the flood is the only
    # variable between it and the governed run (tenancy.overhead measures
    # the governed-vs-ungoverned bookkeeping delta separately).
    baseline, _, baseline_shed = _noisy_neighbor_run(
        0, config, count, query_rounds, victim_every
    )
    ungoverned, _, _ = _noisy_neighbor_run(flood, None, count, query_rounds,
                                           victim_every)
    governed, throttled, victim_shed = _noisy_neighbor_run(
        flood, config, count, query_rounds, victim_every
    )
    victim_shed += baseline_shed
    base_p99 = summarize(baseline)["p99"] * 1e3
    ungoverned_p99 = summarize(ungoverned)["p99"] * 1e3
    governed_p99 = summarize(governed)["p99"] * 1e3
    return ScenarioResult(
        {
            "victim_p99_baseline_ms": Metric(base_p99, "ms", "lower"),
            "victim_p99_ungoverned_ms": Metric(ungoverned_p99, "ms", "lower"),
            "victim_p99_governed_ms": Metric(governed_p99, "ms", "lower"),
            # Deterministic tripwire: the victim must never be shed under
            # governance, at any scale.
            "victim_shed": Metric(float(victim_shed), "writes", "lower"),
        },
        meta={
            "docs": count,
            "flood_per_doc": flood,
            "victim_every": victim_every,
            "query_rounds": query_rounds,
            # Scale-dependent count (quick != full), so meta not a metric;
            # tests and the chaos invariant enforce that it stays > 0.
            "flood_throttled": throttled,
            "governed_over_baseline_pct": round(
                100.0 * (governed_p99 - base_p99) / base_p99 if base_p99 else 0.0,
                1,
            ),
        },
    )


@scenario("tenancy.qos_ordering", "tenancy",
          "three equal-rate tenants in different QoS classes drive the "
          "governor past saturation; lower classes must shed first")
def tenancy_qos_ordering(quick: bool) -> ScenarioResult:
    from repro.errors import TenantThrottledError
    from repro.tenancy import TenantGovernor

    rounds = 400 if quick else 2000
    config = _tenancy_config(
        write_rate=5.0,
        write_burst=8.0,
        queue_capacity=24,
        tenant_qos=(
            ("t-interactive", "interactive"),
            ("t-standard", "standard"),
            ("t-batch", "batch"),
        ),
    )
    governor = TenantGovernor(config)
    tenants = ("t-interactive", "t-standard", "t-batch")
    start = time.perf_counter()
    for i in range(rounds):
        now = i * 0.01  # 100 offered writes/s/tenant vs a 5/s budget
        for tenant in tenants:
            try:
                governor.admit_write(tenant, now, 64)
            except TenantThrottledError:
                pass
    elapsed = time.perf_counter() - start
    counts = {tenant: governor.tenant_counts(tenant) for tenant in tenants}
    admitted = {tenant: counts[tenant][0] for tenant in tenants}
    ordering_ok = (
        admitted["t-interactive"] >= admitted["t-standard"] >= admitted["t-batch"]
    )
    ops = rounds * len(tenants)
    return ScenarioResult(
        {
            "wall_admissions_per_s": Metric(
                ops / elapsed if elapsed > 0 else 0.0, "ops/s", "higher"
            ),
            # Deterministic, scale-invariant tripwire (logical clocks only);
            # the per-class admitted/shed counts live in meta because they
            # scale with `rounds`.
            "qos_ordering_ok": Metric(1.0 if ordering_ok else 0.0, "bool", "higher"),
        },
        meta={
            "rounds": rounds,
            "admitted": admitted,
            "shed": {tenant: counts[tenant][2] for tenant in tenants},
        },
    )


# -- exec family ---------------------------------------------------------------


def _exec_db(exec_config=None, cache=None, num_shards: int = 8):
    from repro.cluster import ClusterTopology
    from repro.esdb import ESDB, EsdbConfig

    extras = {}
    if exec_config is not None:
        extras["exec"] = exec_config
    if cache is not None:
        extras["cache"] = cache
    return ESDB(
        EsdbConfig(
            topology=ClusterTopology(
                num_nodes=2, num_shards=num_shards, replicas_per_shard=0
            ),
            consensus_interval=1.0,
            **extras,
        )
    )


@scenario("exec.bulk_write", "exec",
          "batched bulk_write vs a per-document write loop, identical "
          "topology and documents on both sides")
def exec_bulk_write(quick: bool) -> ScenarioResult:
    count = 2_000 if quick else 10_000
    elapsed = {}
    for label in ("loop", "bulk"):
        db = _exec_db()
        docs = _documents(count, seed=3)
        gc.collect()  # don't bill one side for the other side's garbage
        gc.disable()
        start = time.perf_counter()
        try:
            if label == "loop":
                for doc in docs:
                    db.write(doc)
            else:
                result = db.bulk_write(docs)
                assert result.ok, "bulk_write must apply every bench doc"
        finally:
            gc.enable()
        elapsed[label] = time.perf_counter() - start
    loop_rate = count / elapsed["loop"] if elapsed["loop"] else 0.0
    bulk_rate = count / elapsed["bulk"] if elapsed["bulk"] else 0.0
    return ScenarioResult(
        {
            "loop_docs_per_s": Metric(loop_rate, "docs/s", "higher"),
            "bulk_docs_per_s": Metric(bulk_rate, "docs/s", "higher"),
            "bulk_speedup_x": Metric(
                bulk_rate / loop_rate if loop_rate else 0.0, "x", "higher"
            ),
        },
        meta={"docs": count, "shards": 8},
    )


@scenario("exec.fanout", "exec",
          "full fan-out query latency vs shard count, serial and threads "
          "scatter-gather (results must be identical)")
def exec_fanout(quick: bool) -> ScenarioResult:
    from repro.cache import CacheConfig
    from repro.exec import ExecConfig

    count = 600 if quick else 2_400
    rounds = 8 if quick else 24
    sql = "SELECT COUNT(*) FROM transaction_logs WHERE quantity >= 3"
    metrics = {}
    meta = {"docs": count, "rounds": rounds}
    reference = {}
    for shards in (4, 16):
        for backend in ("serial", "threads"):
            exec_config = (
                ExecConfig.threads() if backend == "threads" else None
            )
            # Caches off: a repeated statement must actually fan out every
            # round, otherwise this measures the result cache.
            db = _exec_db(
                exec_config=exec_config,
                cache=CacheConfig.off(),
                num_shards=shards,
            )
            db.bulk_write(_documents(count, seed=5))
            db.refresh()
            durations = time_ops(lambda i: db.execute_sql(sql), rounds)
            result = db.execute_sql(sql)
            if shards in reference:
                assert result.rows == reference[shards], (
                    "threads fan-out must return the serial result"
                )
            reference[shards] = result.rows
            # Direction-aware but tolerant by construction: under the GIL
            # the thread backend proves ordering/equivalence, not speed, so
            # each (backend, shards) cell is its own lower-is-better series
            # rather than a cross-backend ratio that noise could flip.
            metrics[f"{backend}_{shards}shard_p50_ms"] = Metric(
                sorted(durations)[len(durations) // 2] * 1e3, "ms", "lower"
            )
            meta[f"{backend}_{shards}shard_hits"] = result.total_hits
            db.close()
    return ScenarioResult(metrics, meta=meta)


@scenario("exec.shared_scan", "exec",
          "8 identical full-scan queries: independent execution vs one "
          "coalesced execute_batch pass (caches off)")
def exec_shared_scan(quick: bool) -> ScenarioResult:
    from repro.cache import CacheConfig
    from repro.exec import ExecConfig

    count = 1_200 if quick else 6_000
    batch = ["SELECT * FROM transaction_logs WHERE quantity >= 3"] * 8
    # Serial backend with coalescing on: the shared-scan win is measured
    # by itself, with no worker pool and no result cache helping either
    # side.
    db = _exec_db(
        exec_config=ExecConfig(backend="serial", coalesce_queries=True),
        cache=CacheConfig.off(),
    )
    db.bulk_write(_documents(count, seed=9))
    db.refresh()
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        independent = [db.execute_sql(sql) for sql in batch]
        independent_s = time.perf_counter() - start
        start = time.perf_counter()
        shared = db.execute_batch(batch)
        shared_s = time.perf_counter() - start
    finally:
        gc.enable()
    assert all(
        a.rows == b.rows and a.total_hits == b.total_hits
        for a, b in zip(shared, independent)
    ), "coalesced results must equal independent execution"
    independent_rate = len(batch) / independent_s if independent_s else 0.0
    shared_rate = len(batch) / shared_s if shared_s else 0.0
    saved = db.telemetry.metrics.total("exec_shared_saved_total")
    return ScenarioResult(
        {
            "independent_queries_per_s": Metric(
                independent_rate, "queries/s", "higher"
            ),
            "shared_queries_per_s": Metric(shared_rate, "queries/s", "higher"),
            "shared_speedup_x": Metric(
                shared_rate / independent_rate if independent_rate else 0.0,
                "x", "higher",
            ),
        },
        meta={
            "docs": count,
            "batch": len(batch),
            "queries_saved": int(saved),
            "hits": shared[0].total_hits,
        },
    )


# -- trace family -------------------------------------------------------------


@scenario("trace.overhead", "trace",
          "identical skewed write workload with request tracing on "
          "(always-sample) vs. TraceConfig.off(); the p50 delta is the "
          "per-write cost of ids, spans, events and exemplars")
def trace_overhead(quick: bool) -> ScenarioResult:
    from repro.cluster import ClusterTopology
    from repro.esdb import ESDB, EsdbConfig
    from repro.telemetry import TraceConfig

    count = 400 if quick else 1200
    rounds = 3 if quick else 5
    #: Acceptance bound: tracing must cost <= this much p50 write latency.
    bound_pct = 10.0

    def run_round(tracing) -> tuple[float, float, int]:
        """One fresh instance, *count* writes; returns (p50, total, roots)."""
        db = ESDB(
            EsdbConfig(
                topology=ClusterTopology(
                    num_nodes=2, num_shards=8, replicas_per_shard=0
                ),
                consensus_interval=1.0,
                tracing=tracing,
            )
        )
        docs = _documents(count, seed=13)
        gc.collect()  # don't bill one phase for the other phase's garbage
        gc.disable()
        try:
            durations = time_ops(lambda i: db.write(docs[i]), count)
        finally:
            gc.enable()
        roots = len(db.telemetry.tracer.finished)
        db.close()
        ordered = sorted(durations)
        return ordered[len(ordered) // 2], sum(durations), roots

    # Alternate the two configurations across rounds (flipping which goes
    # first) and keep each side's *minimum* p50: scheduler noise and cache
    # warm-up only ever inflate a round, so min-of-rounds isolates the real
    # per-write tracing cost from machine jitter.
    configs = {"traced": TraceConfig(), "untraced": TraceConfig.off()}
    p50 = {"traced": float("inf"), "untraced": float("inf")}
    best_total = {"traced": float("inf"), "untraced": float("inf")}
    traced_roots = 0
    for round_index in range(rounds):
        order = ("traced", "untraced") if round_index % 2 else ("untraced", "traced")
        for label in order:
            round_p50, total, roots = run_round(configs[label])
            p50[label] = min(p50[label], round_p50)
            best_total[label] = min(best_total[label], total)
            if label == "traced":
                traced_roots = roots
    rate = {
        label: count / best_total[label] if best_total[label] else 0.0
        for label in configs
    }
    overhead_pct = 100.0 * (p50["traced"] - p50["untraced"]) / (
        p50["untraced"] or 1.0
    )
    return ScenarioResult(
        {
            "untraced_writes_per_s": Metric(
                rate["untraced"], "writes/s", "higher"
            ),
            "traced_writes_per_s": Metric(rate["traced"], "writes/s", "higher"),
            "overhead_within_bound": Metric(
                1.0 if overhead_pct <= bound_pct else 0.0, "bool", "higher"
            ),
        },
        # The raw overhead percentage hovers near zero and flips sign with
        # machine jitter, so a *relative* baseline comparison on it is
        # meaningless — it rides in meta; the bound gate is the metric.
        meta={"writes": count, "rounds": rounds, "bound_pct": bound_pct,
              "trace_overhead_pct": overhead_pct,
              "finished_roots": traced_roots},
    )


# -- slo family ---------------------------------------------------------------


@scenario("slo.overhead", "slo",
          "identical skewed write workload with SLO tracking + heavy-hitter "
          "profiling on vs. SloConfig() (off); the p50 delta is the "
          "per-write cost of SLI recording, sketch offers and burn checks")
def slo_overhead(quick: bool) -> ScenarioResult:
    from repro.cluster import ClusterTopology
    from repro.esdb import ESDB, EsdbConfig
    from repro.slo import SloConfig

    count = 400 if quick else 1200
    rounds = 3 if quick else 5
    #: Acceptance bound: SLO tracking must cost <= this much p50 write latency.
    bound_pct = 10.0

    def run_round(slo) -> tuple[float, float, int]:
        """One fresh instance, *count* writes; returns (p50, total, evals)."""
        db = ESDB(
            EsdbConfig(
                topology=ClusterTopology(
                    num_nodes=2, num_shards=8, replicas_per_shard=0
                ),
                consensus_interval=1.0,
                slo=slo,
            )
        )
        docs = _documents(count, seed=13)
        gc.collect()  # don't bill one phase for the other phase's garbage
        gc.disable()
        try:
            durations = time_ops(lambda i: db.write(docs[i]), count)
        finally:
            gc.enable()
        evaluations = db.slo.evaluations if db.slo is not None else 0
        db.close()
        ordered = sorted(durations)
        return ordered[len(ordered) // 2], sum(durations), evaluations

    # Same protocol as trace.overhead: alternate the two configurations
    # across rounds (flipping which goes first) and keep each side's
    # *minimum* p50, isolating the per-write SLO cost from machine jitter.
    configs = {"tracked": SloConfig(enabled=True), "untracked": SloConfig()}
    p50 = {"tracked": float("inf"), "untracked": float("inf")}
    best_total = {"tracked": float("inf"), "untracked": float("inf")}
    tracked_evals = 0
    for round_index in range(rounds):
        order = (
            ("tracked", "untracked") if round_index % 2 else ("untracked", "tracked")
        )
        for label in order:
            round_p50, total, evaluations = run_round(configs[label])
            p50[label] = min(p50[label], round_p50)
            best_total[label] = min(best_total[label], total)
            if label == "tracked":
                tracked_evals = evaluations
    rate = {
        label: count / best_total[label] if best_total[label] else 0.0
        for label in configs
    }
    overhead_pct = 100.0 * (p50["tracked"] - p50["untracked"]) / (
        p50["untracked"] or 1.0
    )
    return ScenarioResult(
        {
            "untracked_writes_per_s": Metric(
                rate["untracked"], "writes/s", "higher"
            ),
            "tracked_writes_per_s": Metric(rate["tracked"], "writes/s", "higher"),
            "overhead_within_bound": Metric(
                1.0 if overhead_pct <= bound_pct else 0.0, "bool", "higher"
            ),
        },
        # As with trace.overhead, the raw percentage flips sign with machine
        # jitter, so it rides in meta; the bound gate is the metric.
        meta={"writes": count, "rounds": rounds, "bound_pct": bound_pct,
              "slo_overhead_pct": overhead_pct,
              "slo_evaluations": tracked_evals},
    )


# -- workload family ----------------------------------------------------------


@scenario("workload.arrivals", "workload",
          "drain the Poisson, bursty (MMPP on/off) and diurnal-thinning "
          "arrival streams; wall events/s measures generator cost while the "
          "exact per-stream event counts are deterministic tripwires")
def workload_arrivals(quick: bool) -> ScenarioResult:
    from repro.workload.arrivals import (
        ArrivalStats,
        BurstyProcess,
        DiurnalRate,
        PoissonProcess,
    )

    duration = 20.0 if quick else 60.0
    rate = 300.0 if quick else 1000.0
    processes = {
        "poisson": PoissonProcess(rate, duration=duration, seed=1),
        "bursty": BurstyProcess(
            rate,
            duration=duration,
            off_rate=rate * 0.05,
            mean_on_seconds=2.0,
            mean_off_seconds=3.0,
            seed=2,
        ),
        "diurnal": PoissonProcess(
            DiurnalRate(rate, amplitude=0.7, period=duration),
            duration=duration,
            seed=3,
        ),
    }
    counts: dict[str, int] = {}
    burstiness: dict[str, float] = {}
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for name, process in processes.items():
            stats = ArrivalStats()
            for t in process.times():
                stats.record(t)
            counts[name] = stats.count
            burstiness[name] = stats.burstiness
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    total = sum(counts.values())
    metrics = {
        "events_per_s": Metric(total / elapsed if elapsed else 0.0, "events/s",
                               "higher"),
        # Exact tripwires: the streams are seed-driven, so any drift in the
        # generators shows up as a count change against the baseline.
        "poisson_events": Metric(float(counts["poisson"]), "events", "higher"),
        "bursty_events": Metric(float(counts["bursty"]), "events", "higher"),
        "diurnal_events": Metric(float(counts["diurnal"]), "events", "higher"),
    }
    return ScenarioResult(
        metrics,
        meta={"duration": duration, "rate": rate, "burstiness": burstiness},
    )


@scenario("workload.replay", "workload",
          "record a short bursty + flash-tenant-churn v2 trace, then replay "
          "it into a fresh instance through the batched bulk path with the "
          "clock following the recorded arrival timestamps")
def workload_replay(quick: bool) -> ScenarioResult:
    import tempfile
    from pathlib import Path

    from repro.workload.arrivals import BurstyProcess, TenantChurn
    from repro.workload.generator import WorkloadConfig
    from repro.workload.trace import replay_trace, write_trace

    duration = 10.0 if quick else 30.0
    rate = 120.0 if quick else 400.0
    workload = WorkloadConfig(num_tenants=500, theta=1.0, seed=5)
    arrival = BurstyProcess(
        rate, duration=duration, off_rate=rate * 0.1,
        mean_on_seconds=1.5, mean_off_seconds=1.5, seed=6,
    )
    churn = TenantChurn(
        duration=duration, spawn_rate=0.5, mean_lifetime_seconds=3.0, seed=7
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "bench-trace.jsonl"
        info = write_trace(
            path, workload=workload, arrival=arrival, churn=churn
        )
        db = _bench_db()
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            stats = replay_trace(db, path)
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        docs = db.doc_count()
        db.close()
    return ScenarioResult(
        {
            "replay_docs_per_s": Metric(
                docs / elapsed if elapsed else 0.0, "docs/s", "higher"
            ),
            # Deterministic tripwires: the recorded stream and its churn
            # schedule are seed-driven end to end.
            "trace_docs": Metric(float(info.count or 0), "docs", "higher"),
            "replayed_docs": Metric(float(docs), "docs", "higher"),
            "peak_live_tenants": Metric(
                float(stats.peak_live_tenants), "tenants", "higher"
            ),
        },
        meta={
            "duration": duration,
            "rate": rate,
            "burstiness": stats.burstiness,
            "realized_rate": stats.realized_rate,
        },
    )
