"""The registered benchmark scenarios.

Five families, mirroring the paper's evaluation axes plus fault tolerance:

* ``write.*`` — the facade write path under Zipf skew, one scenario per
  routing policy (Figs 10–13: the policies are the paper's headline
  comparison);
* ``query.*`` — end-to-end SQL through parse → plan → fan-out →
  aggregate, cold vs. warm caches and optimizer on vs. off (Figs 16–17);
* ``storage.*`` — shard-engine micro-operations: buffer indexing, flush
  (refresh + translog checkpoint), and segment merging (§3.3);
* ``sim.*`` — the fluid-flow write simulation; its *model* outputs
  (throughput, delay) are bit-deterministic, so they double as exact
  regression tripwires on top of the wall-clock tick rate;
* ``chaos.*`` — a seeded :mod:`repro.faults` scenario (crash the primary
  mid-workload, promote, heal); acked-write and invariant counts are
  deterministic tripwires, wall throughput tracks recovery cost.

Every scenario accepts ``quick`` (reduced iteration counts for CI smoke
runs and tests) and returns the standard throughput + p50/p95/p99 metric
set from :func:`repro.bench.harness.latency_metrics`.
"""

from __future__ import annotations

import time

from repro.bench.harness import (
    Metric,
    ScenarioResult,
    latency_metrics,
    scenario,
    time_ops,
)

#: Hot tenant pinned into every ingest so tenant-scoped queries hit data.
HOT_TENANT = "bench-hot"


def _bench_db(cache=None, optimizer_enabled: bool = True):
    """A small, fully wired ESDB instance for benchmarking."""
    from repro.cluster import ClusterTopology
    from repro.esdb import ESDB, EsdbConfig

    config = EsdbConfig(
        topology=ClusterTopology(num_nodes=2, num_shards=8, replicas_per_shard=0),
        optimizer_enabled=optimizer_enabled,
        consensus_interval=1.0,
        **({"cache": cache} if cache is not None else {}),
    )
    return ESDB(config)


def _generator(seed: int = 0):
    from repro.workload.generator import TransactionLogGenerator, WorkloadConfig

    return TransactionLogGenerator(WorkloadConfig(num_tenants=1_000, seed=seed))


def _documents(count: int, seed: int = 0, hot_every: int = 3) -> list[dict]:
    """Zipf-skewed documents with every *hot_every*-th write pinned to the
    bench hot tenant (guarantees a hotspot and query hits)."""
    generator = _generator(seed)
    docs = []
    for i in range(count):
        tenant = HOT_TENANT if i % hot_every == 0 else None
        docs.append(generator.generate(created_time=i * 0.02, tenant_id=tenant))
    return docs


# -- write family -------------------------------------------------------------


def _write_scenario(policy_factory, quick: bool, rebalance: bool = False) -> ScenarioResult:
    from repro.esdb import ESDB, EsdbConfig
    from repro.cluster import ClusterTopology

    count = 300 if quick else 1500
    docs = _documents(count)
    db = ESDB(
        EsdbConfig(
            topology=ClusterTopology(num_nodes=2, num_shards=8, replicas_per_shard=0),
            consensus_interval=1.0,
        ),
        policy=policy_factory(8),
    )

    def op(i: int) -> None:
        db.write(docs[i])

    durations = []
    for start in range(0, count, 100):
        durations.extend(time_ops(lambda i, base=start: op(base + i),
                                  min(100, count - start)))
        if rebalance:
            db.rebalance()
    metrics = latency_metrics(durations)
    return ScenarioResult(
        metrics,
        meta={"writes": count, "shards": 8, "policy": db.policy.name},
    )


@scenario("write.routing.hash", "write",
          "facade write path, single-hash routing, Zipf-skewed tenants")
def write_hash(quick: bool) -> ScenarioResult:
    from repro.routing import HashRouting

    return _write_scenario(HashRouting, quick)


@scenario("write.routing.double", "write",
          "facade write path, double-hash routing (static offset spread)")
def write_double(quick: bool) -> ScenarioResult:
    from repro.routing import DoubleHashRouting

    return _write_scenario(lambda n: DoubleHashRouting(n, offset=4), quick)


@scenario("write.routing.dynamic", "write",
          "facade write path, dynamic secondary hashing with balance rounds")
def write_dynamic(quick: bool) -> ScenarioResult:
    from repro.routing import DynamicSecondaryHashRouting

    return _write_scenario(DynamicSecondaryHashRouting, quick, rebalance=True)


# -- query family -------------------------------------------------------------

_QUERY_SET = (
    f"SELECT * FROM transaction_logs WHERE tenant_id = '{HOT_TENANT}' LIMIT 10",
    f"SELECT status, COUNT(*) FROM transaction_logs "
    f"WHERE tenant_id = '{HOT_TENANT}' GROUP BY status",
    f"SELECT * FROM transaction_logs WHERE tenant_id = '{HOT_TENANT}' "
    f"AND status = 1 ORDER BY created_time DESC LIMIT 5",
    "SELECT COUNT(*) FROM transaction_logs WHERE quantity >= 5",
    "SELECT * FROM transaction_logs WHERE amount <= 500 AND quantity <= 3 LIMIT 20",
)


def _query_scenario(cache, optimizer_enabled: bool, quick: bool,
                    warm: bool) -> ScenarioResult:
    count = 240 if quick else 1000
    rounds = 3 if quick else 8
    db = _bench_db(cache=cache, optimizer_enabled=optimizer_enabled)
    for doc in _documents(count, seed=1):
        db.write(doc)
    db.refresh()
    if warm:
        for sql in _QUERY_SET:  # priming round fills all cache levels
            db.execute_sql(sql)
    statements = [sql for _ in range(rounds) for sql in _QUERY_SET]

    durations = time_ops(lambda i: db.execute_sql(statements[i]), len(statements))
    metrics = latency_metrics(durations)
    hits = db.telemetry.metrics.total("cache_hits_total")
    misses = db.telemetry.metrics.total("cache_misses_total")
    return ScenarioResult(
        metrics,
        meta={
            "docs": count,
            "queries": len(statements),
            "cache_hits": int(hits),
            "cache_misses": int(misses),
        },
    )


@scenario("query.cache.cold", "query",
          "SQL query set with every cache level disabled (cold baseline)")
def query_cold(quick: bool) -> ScenarioResult:
    from repro.cache import CacheConfig

    return _query_scenario(CacheConfig.off(), True, quick, warm=False)


@scenario("query.cache.warm", "query",
          "SQL query set against warmed filter/request/result caches")
def query_warm(quick: bool) -> ScenarioResult:
    return _query_scenario(None, True, quick, warm=True)


@scenario("query.optimizer.on", "query",
          "SQL query set with the rule-based optimizer, caches off")
def query_optimizer_on(quick: bool) -> ScenarioResult:
    from repro.cache import CacheConfig

    return _query_scenario(CacheConfig.off(), True, quick, warm=False)


@scenario("query.optimizer.off", "query",
          "SQL query set without the optimizer (naive plans), caches off")
def query_optimizer_off(quick: bool) -> ScenarioResult:
    from repro.cache import CacheConfig

    return _query_scenario(CacheConfig.off(), False, quick, warm=False)


# -- storage family -----------------------------------------------------------


def _engine():
    from repro.storage import EngineConfig, Schema, ShardEngine

    config = EngineConfig(
        schema=Schema.transaction_logs(),
        composite_columns=(("tenant_id", "created_time"),),
        scan_columns=frozenset({"status", "quantity"}),
        auto_refresh_every=None,
    )
    return ShardEngine(config, shard_id=0)


@scenario("storage.index", "storage",
          "shard-engine document indexing into the write buffer")
def storage_index(quick: bool) -> ScenarioResult:
    count = 600 if quick else 3000
    docs = _documents(count, seed=2)
    engine = _engine()
    durations = time_ops(lambda i: engine.index(docs[i]), count)
    return ScenarioResult(latency_metrics(durations), meta={"docs": count})


@scenario("storage.flush", "storage",
          "flush: refresh buffered docs into a segment + translog checkpoint")
def storage_flush(quick: bool) -> ScenarioResult:
    batches = 20 if quick else 60
    batch_size = 30
    docs = _documents(batches * batch_size, seed=3)
    engine = _engine()

    def op(i: int) -> None:
        engine.flush()

    durations = []
    for batch in range(batches):
        for doc in docs[batch * batch_size : (batch + 1) * batch_size]:
            engine.index(doc)
        durations.extend(time_ops(op, 1))
    return ScenarioResult(
        latency_metrics(durations),
        meta={"batches": batches, "batch_size": batch_size,
              "segments": engine.segment_count()},
    )


@scenario("storage.merge", "storage",
          "tiered segment merges over a pre-built many-segment shard")
def storage_merge(quick: bool) -> ScenarioResult:
    from repro.storage.merge import TieredMergePolicy

    segments = 24 if quick else 64
    segment_docs = 25
    docs = _documents(segments * segment_docs, seed=4)
    engine = _engine()
    # Build the segment pile with merging suppressed, then merge it down.
    engine.merge_policy = TieredMergePolicy(merge_factor=10_000)
    for index in range(segments):
        for doc in docs[index * segment_docs : (index + 1) * segment_docs]:
            engine.index(doc)
        engine.refresh()
    engine.merge_policy = TieredMergePolicy(merge_factor=4)
    durations = []
    merges = 0
    while True:
        start = time.perf_counter()
        merged = engine.maybe_merge()
        elapsed = time.perf_counter() - start
        if merged is None:
            break
        durations.append(elapsed)
        merges += 1
    return ScenarioResult(
        latency_metrics(durations),
        meta={"initial_segments": segments, "merges": merges,
              "final_segments": engine.segment_count()},
    )


# -- chaos family -------------------------------------------------------------


@scenario("chaos.crash_failover", "chaos",
          "seeded chaos run: blackhole + node crash + primary crash mid-workload, "
          "then full recovery with invariant checks")
def chaos_crash_failover(quick: bool) -> ScenarioResult:
    from repro.faults import ChaosConfig, ChaosRunner
    from repro.faults.__main__ import build_failover_plan

    steps = 160 if quick else 600
    shards = 8
    plan = build_failover_plan(seed=42, steps=steps, num_shards=shards)
    runner = ChaosRunner(
        plan,
        ChaosConfig(steps=steps, num_nodes=3, num_shards=shards, replicas_per_shard=2),
    )
    start = time.perf_counter()
    report = runner.run()
    elapsed = time.perf_counter() - start
    return ScenarioResult(
        {
            "wall_steps_per_s": Metric(
                steps / elapsed if elapsed > 0 else 0.0, "steps/s", "higher"
            ),
            # Deterministic tripwires: same seed must ack every write and
            # recover with zero invariant violations.
            "acked_writes": Metric(float(report.writes_acked), "writes", "higher"),
            "invariant_violations": Metric(
                float(len(report.violations)), "violations", "lower"
            ),
        },
        meta={
            "seed": plan.seed,
            "faults_injected": report.faults_injected,
            "faults_recovered": report.faults_recovered,
            "dead_letters_redriven": report.dead_letters_redriven,
            "fingerprint": report.fingerprint(),
        },
    )


# -- sim family ---------------------------------------------------------------


@scenario("sim.write_static", "sim",
          "fluid-flow write simulation, dynamic policy under constant rate")
def sim_write_static(quick: bool) -> ScenarioResult:
    from repro.routing import DynamicSecondaryHashRouting
    from repro.sim import SimulationConfig, WriteSimulation
    from repro.workload.scenarios import StaticScenario

    duration = 40.0 if quick else 150.0
    config = SimulationConfig(
        num_nodes=4,
        num_shards=64,
        node_capacity=5_000.0,
        sample_per_tick=300 if quick else 800,
        balance_window=10.0,
        consensus_interval=5.0,
    )
    simulation = WriteSimulation(
        DynamicSecondaryHashRouting(config.num_shards),
        StaticScenario(rate=9_000.0, duration=duration),
        config=config,
    )
    start = time.perf_counter()
    report = simulation.run()
    elapsed = time.perf_counter() - start
    ticks = len(simulation.metrics.samples)
    return ScenarioResult(
        {
            "wall_ticks_per_s": Metric(
                ticks / elapsed if elapsed > 0 else 0.0, "ticks/s", "higher"
            ),
            # Model outputs are deterministic (seeded): exact tripwires.
            "model_throughput": Metric(report.throughput, "writes/s", "higher"),
            "model_delay_p99_s": Metric(report.delay_p99, "s", "lower"),
            "model_max_delay_s": Metric(report.max_delay, "s", "lower"),
        },
        meta={
            "ticks": ticks,
            "rules_committed": len(simulation.rule_commits),
            "history_series": len(simulation.timeseries.all_series()),
        },
    )
