"""The benchmark harness: scenario registry, timing loop, result schema.

A *scenario* is a named, registered callable that exercises one hot path
(a routing policy under Zipf skew, a query shape against cold or warm
caches, a storage micro-operation, a simulator run) and returns a set of
:class:`Metric` values — throughput plus p50/p95/p99 latency, each tagged
with a unit and a *direction* (``higher`` or ``lower`` is better), so the
comparator never has to guess which way a number should move.

``run_scenarios`` executes a selection and assembles the machine-readable
payload written to ``BENCH_RESULTS.json``: schema-versioned, env-stamped
(python / platform / cpu count), with a ``quick`` flag so a reduced CI run
is never mistaken for a full baseline. ``validate_results`` checks the
schema; :mod:`repro.bench.compare` diffs two payloads.
"""

from __future__ import annotations

import os
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import ConfigurationError
from repro.telemetry.metrics import summarize

#: Bumped whenever the payload layout changes incompatibly.
SCHEMA_VERSION = 1

#: The scenario families the suite must span (acceptance floor).
FAMILIES = (
    "write", "query", "storage", "sim", "chaos", "tenancy", "exec", "trace", "slo",
    "workload",
)


@dataclass(frozen=True)
class Metric:
    """One measured number with its unit and improvement direction."""

    value: float
    unit: str
    direction: str  # "higher" or "lower" is better

    def __post_init__(self) -> None:
        if self.direction not in ("higher", "lower"):
            raise ConfigurationError(
                f"metric direction must be 'higher' or 'lower', got {self.direction!r}"
            )

    def to_dict(self) -> dict:
        return {"value": self.value, "unit": self.unit, "direction": self.direction}


@dataclass(frozen=True)
class ScenarioResult:
    """What a scenario function returns: metrics plus free-form meta."""

    metrics: dict[str, Metric]
    meta: dict = field(default_factory=dict)


@dataclass(frozen=True)
class BenchScenario:
    name: str
    family: str
    description: str
    func: Callable[[bool], ScenarioResult]  # quick -> result


_SCENARIOS: dict[str, BenchScenario] = {}


def scenario(name: str, family: str, description: str = ""):
    """Decorator: register ``func(quick: bool) -> ScenarioResult``."""
    if family not in FAMILIES:
        raise ConfigurationError(
            f"unknown scenario family {family!r}; expected one of {FAMILIES}"
        )

    def register(func):
        if name in _SCENARIOS:
            raise ConfigurationError(f"bench scenario {name!r} already registered")
        _SCENARIOS[name] = BenchScenario(name, family, description, func)
        return func

    return register


def registered() -> list[str]:
    """All registered scenario names, sorted."""
    _ensure_loaded()
    return sorted(_SCENARIOS)


def get(name: str) -> BenchScenario:
    _ensure_loaded()
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown bench scenario {name!r}; known: {', '.join(sorted(_SCENARIOS))}"
        ) from None


def _ensure_loaded() -> None:
    """Import the scenario definitions exactly once (registration side
    effect); keeps ``import repro.bench`` cheap until a run is requested."""
    from repro.bench import scenarios  # noqa: F401  (registers on import)


# -- timing helpers -----------------------------------------------------------


def time_ops(op: Callable[[int], object], count: int) -> list[float]:
    """Run ``op(i)`` *count* times; return per-op wall durations (seconds)."""
    durations = []
    for i in range(count):
        start = time.perf_counter()
        op(i)
        durations.append(time.perf_counter() - start)
    return durations


def latency_metrics(durations: Iterable[float]) -> dict[str, Metric]:
    """The standard throughput + quantile metric set from raw durations.

    Quantiles go through :func:`repro.telemetry.summarize`, i.e. the same
    bucket-interpolation math as live telemetry histograms.
    """
    durations = list(durations)
    total = sum(durations)
    summary = summarize(durations)
    return {
        "throughput_ops_s": Metric(
            len(durations) / total if total > 0 else 0.0, "ops/s", "higher"
        ),
        "p50_ms": Metric(summary["p50"] * 1e3, "ms", "lower"),
        "p95_ms": Metric(summary["p95"] * 1e3, "ms", "lower"),
        "p99_ms": Metric(summary["p99"] * 1e3, "ms", "lower"),
        "mean_ms": Metric(summary["mean"] * 1e3, "ms", "lower"),
    }


# -- running ------------------------------------------------------------------


def env_stamp() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "argv": " ".join(sys.argv[:1]),
    }


def run_scenarios(
    names: Iterable[str] | None = None,
    quick: bool = False,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Run the named scenarios (default: all) and return the results payload."""
    _ensure_loaded()
    selected = list(names) if names is not None else registered()
    payload: dict = {
        "schema_version": SCHEMA_VERSION,
        "tool": "repro.bench",
        "quick": quick,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "env": env_stamp(),
        "scenarios": {},
    }
    for name in selected:
        bench = get(name)
        if progress is not None:
            progress(f"running {bench.name} [{bench.family}] ...")
        start = time.perf_counter()
        result = bench.func(quick)
        elapsed = time.perf_counter() - start
        payload["scenarios"][bench.name] = {
            "family": bench.family,
            "description": bench.description,
            "elapsed_s": elapsed,
            "metrics": {
                metric_name: metric.to_dict()
                for metric_name, metric in sorted(result.metrics.items())
            },
            "meta": result.meta,
        }
    return payload


def validate_results(payload: dict) -> list[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    errors: list[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        errors.append(f"schema_version is {version!r}, expected {SCHEMA_VERSION}")
    if not isinstance(payload.get("env"), dict) or "python" not in payload.get("env", {}):
        errors.append("missing env stamp (env.python)")
    if "quick" not in payload:
        errors.append("missing quick flag")
    scenarios_obj = payload.get("scenarios")
    if not isinstance(scenarios_obj, dict) or not scenarios_obj:
        errors.append("scenarios section missing or empty")
        return errors
    for name, entry in scenarios_obj.items():
        if not isinstance(entry, dict):
            errors.append(f"scenario {name!r} is not an object")
            continue
        if entry.get("family") not in FAMILIES:
            errors.append(f"scenario {name!r} has unknown family {entry.get('family')!r}")
        metrics = entry.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            errors.append(f"scenario {name!r} has no metrics")
            continue
        for metric_name, metric in metrics.items():
            if not isinstance(metric, dict):
                errors.append(f"{name}.{metric_name} is not an object")
                continue
            if not isinstance(metric.get("value"), (int, float)):
                errors.append(f"{name}.{metric_name} has non-numeric value")
            if metric.get("direction") not in ("higher", "lower"):
                errors.append(
                    f"{name}.{metric_name} has invalid direction "
                    f"{metric.get('direction')!r}"
                )
    return errors


def families_covered(payload: dict) -> set[str]:
    """The scenario families present in a results payload."""
    return {
        entry.get("family")
        for entry in payload.get("scenarios", {}).values()
        if isinstance(entry, dict)
    }


def render_results(payload: dict) -> str:
    """Human-readable table of a results payload."""
    lines = [
        f"repro.bench results (schema v{payload.get('schema_version')}, "
        f"{'quick' if payload.get('quick') else 'full'}, "
        f"python {payload.get('env', {}).get('python', '?')})"
    ]
    for name in sorted(payload.get("scenarios", {})):
        entry = payload["scenarios"][name]
        metrics = entry.get("metrics", {})
        parts = []
        for metric_name in ("throughput_ops_s", "p50_ms", "p99_ms"):
            metric = metrics.get(metric_name)
            if metric is not None:
                parts.append(f"{metric_name}={metric['value']:.3f}")
        if not parts:  # scenario with non-standard metrics: show them all
            parts = [f"{k}={v['value']:.3f}" for k, v in sorted(metrics.items())]
        lines.append(
            f"  {name:<28} [{entry.get('family', '?'):<7}] "
            f"{' '.join(parts)} ({entry.get('elapsed_s', 0.0):.2f}s)"
        )
    return "\n".join(lines)
