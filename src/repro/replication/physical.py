"""Physical replication of segment files (§5.2, Figure 9).

The replica never re-executes writes. Instead:

* **Real-time translog sync** — every write is forwarded and appended to the
  replica's translog immediately (durability; enables local recovery on
  primary/replica switch).
* **Quick incremental replication** — after each refresh the primary builds
  a snapshot of its current segment list; the replica computes the *segment
  diff* against its own state, requests only the missing segments, deletes
  segments the primary dropped, and acknowledges so the primary can unlock
  the snapshot. Short refresh intervals therefore never restart a long
  monolithic copy.
* **Pre-replication of merged segments** — merged segments are shipped the
  moment the merge finishes, on an independent track, so a large merged
  segment never sits in the refresh-snapshot diff delaying fresh data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReplicationError
from repro.replication.costs import ReplicationAccounting
from repro.storage.engine import ShardEngine
from repro.storage.segment import Segment
from repro.storage.translog import TranslogEntry
from repro.telemetry.runtime import NULL_TELEMETRY


@dataclass(frozen=True)
class SegmentSnapshot:
    """An immutable view of the primary's segment list at one refresh.

    Attributes:
        snapshot_id: monotonically increasing id.
        segment_ids: ids of the segments alive in this snapshot.
        created_at: primary-side timestamp of the refresh.
    """

    snapshot_id: int
    segment_ids: frozenset
    created_at: float


class PhysicalReplicator:
    """Replicates a primary :class:`ShardEngine` onto a replica by shipping
    sealed segments.

    The replica holds real :class:`Segment` objects (transferred by
    reference here, with their byte size charged to the accounting model —
    an in-process stand-in for copying files across machines).
    """

    def __init__(
        self,
        primary: ShardEngine,
        accounting: ReplicationAccounting | None = None,
        network_seconds_per_byte: float = 0.0,
        telemetry=None,
    ) -> None:
        self.primary = primary
        self.accounting = accounting or ReplicationAccounting()
        self.network_seconds_per_byte = network_seconds_per_byte
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        metrics = self.telemetry.metrics
        shard = str(primary.shard_id)
        self._segments_counter = metrics.counter(
            "replication_segments_copied_total", shard=shard
        )
        self._bytes_counter = metrics.counter("replication_bytes_copied_total", shard=shard)
        self._skip_counter = metrics.counter("replication_segment_skips_total", shard=shard)
        self._prereplicated_counter = metrics.counter(
            "replication_prereplicated_total", shard=shard
        )
        self.replica_segments: dict[int, Segment] = {}
        self.replica_translog: list[TranslogEntry] = []
        self.snapshots: list[SegmentSnapshot] = []
        self._snapshot_counter = 0
        self._locked_segments: set[int] = set()
        self._prereplicated: set[int] = set()
        primary.on_refresh(self._on_primary_refresh)
        primary.on_merge(self._on_primary_merge)
        self._pending_refreshed: list[tuple[Segment, float]] = []
        self._pending_merged: list[Segment] = []
        self._clock = 0.0

    # -- clock -------------------------------------------------------------
    def advance_clock(self, now: float) -> None:
        self._clock = max(self._clock, now)

    # -- translog sync (real-time) -------------------------------------------
    def sync_translog_entry(self, entry: TranslogEntry) -> None:
        """Append a forwarded write to the replica's translog immediately."""
        self.replica_translog.append(entry)

    # -- primary-side hooks ---------------------------------------------------
    def _on_primary_refresh(self, segment: Segment) -> None:
        self._pending_refreshed.append((segment, self._clock))

    def _on_primary_merge(self, merged: Segment, victims: list[Segment]) -> None:
        # Pre-replication: ship the merged segment right away on its own
        # track, independent of the refresh snapshots.
        self._pending_merged.append(merged)

    # -- replication rounds --------------------------------------------------
    def build_snapshot(self, now: float | None = None) -> SegmentSnapshot:
        """Step 1–2 of Figure 9: snapshot the primary's current segments and
        select it as the primary state."""
        if now is not None:
            self.advance_clock(now)
        self._snapshot_counter += 1
        snapshot = SegmentSnapshot(
            snapshot_id=self._snapshot_counter,
            segment_ids=frozenset(s.segment_id for s in self.primary.segments),
            created_at=self._clock,
        )
        self.snapshots.append(snapshot)
        return snapshot

    def segment_diff(self, snapshot: SegmentSnapshot) -> tuple[set, set]:
        """Step 4: ``(missing, stale)`` relative to the replica's state."""
        replica_ids = set(self.replica_segments)
        missing = set(snapshot.segment_ids) - replica_ids
        stale = replica_ids - set(snapshot.segment_ids)
        return missing, stale

    def replicate(self, now: float | None = None) -> SegmentSnapshot:
        """Run one quick incremental replication round (steps 1–6 of Fig 9).

        Returns the snapshot that the replica now matches. Merged segments
        pre-replicated earlier are found already present by the diff and
        skipped, which is precisely why pre-replication bounds the
        visibility delay of fresh segments.
        """
        with self.telemetry.tracer.span(
            "replication.round", shard=self.primary.shard_id
        ):
            self.run_prereplication()
            snapshot = self.build_snapshot(now)
            # Step 3: primary locks the snapshot's segments during the round.
            self._locked_segments = set(snapshot.segment_ids)
            try:
                missing, stale = self.segment_diff(snapshot)
                by_id = {s.segment_id: s for s in self.primary.segments}
                for segment_id in sorted(missing):
                    segment = by_id.get(segment_id)
                    if segment is None:
                        raise ReplicationError(
                            f"snapshot {snapshot.snapshot_id} references segment "
                            f"{segment_id} no longer on the primary"
                        )
                    self._copy_segment(segment)
                for segment_id in stale:
                    del self.replica_segments[segment_id]
                # Step 6: replica acknowledges; primary unlocks.
            finally:
                self._locked_segments = set()
            self._note_visibility()
            return snapshot

    def run_prereplication(self) -> int:
        """Ship any finished merged segments on the independent track."""
        shipped = 0
        while self._pending_merged:
            merged = self._pending_merged.pop(0)
            if merged.segment_id not in self.replica_segments:
                self._copy_segment(merged)
                self._prereplicated.add(merged.segment_id)
                self._prereplicated_counter.inc()
                shipped += 1
        return shipped

    def _copy_segment(self, segment: Segment) -> None:
        if segment.segment_id in self.replica_segments:
            self.accounting.note_skip()
            self._skip_counter.inc()
            return
        size = segment.approx_bytes()
        self.accounting.charge_copy(size)
        self._segments_counter.inc()
        self._bytes_counter.inc(size)
        self._clock += size * self.network_seconds_per_byte
        self.replica_segments[segment.segment_id] = segment

    def _note_visibility(self) -> None:
        still_pending = []
        for segment, primary_time in self._pending_refreshed:
            if segment.segment_id in self.replica_segments:
                self.accounting.note_visibility(primary_time, self._clock)
            elif any(segment.segment_id in s.segment_ids for s in self.snapshots[-1:]):
                still_pending.append((segment, primary_time))
            # Segments merged away before ever replicating stop being tracked.
        self._pending_refreshed = still_pending

    # -- replica state -----------------------------------------------------------
    def replica_doc_count(self) -> int:
        return sum(s.live_count for s in self.replica_segments.values())

    def in_sync(self) -> bool:
        """True when the replica holds exactly the primary's segment set."""
        primary_ids = {s.segment_id for s in self.primary.segments}
        return set(self.replica_segments) == primary_ids

    def locked_segment_ids(self) -> set:
        return set(self._locked_segments)

    def was_prereplicated(self, segment_id: int) -> bool:
        return segment_id in self._prereplicated

    def valid_translog_prefix(self) -> int:
        """Length of the leading run of translog entries passing their
        checksum. Entries after the first corrupt record cannot be trusted
        (ordering is lost), so failover replays only this prefix."""
        for index, entry in enumerate(self.replica_translog):
            if not entry.verify():
                return index
        return len(self.replica_translog)

    def promote_replica(self) -> ShardEngine:
        """Primary/replica switch: build a serving engine from the replica's
        segments + translog replay of unflushed operations.

        Replay must not assume "doc present in a segment" means "entry
        already applied": an unflushed ``update`` (or re-``index``) of a doc
        that already shipped inside a segment carries newer state than the
        segment copy. Entries whose effect is already visible are skipped;
        everything else is re-applied with the matching engine operation.
        Corrupt entries end the replayable prefix (counted in telemetry).
        """
        engine = ShardEngine(
            self.primary.config,
            shard_id=self.primary.shard_id,
            telemetry=self.telemetry,
        )
        engine.segments = [
            self.replica_segments[sid] for sid in sorted(self.replica_segments)
        ]
        # Rebuild doc-id locations from the copied segments' live rows.
        engine._doc_locations = {
            doc.doc_id: row for row, doc in engine.iter_documents()
        }
        valid = self.valid_translog_prefix()
        skipped = len(self.replica_translog) - valid
        if skipped:
            self.telemetry.metrics.counter(
                "replication_translog_skipped_total",
                shard=str(self.primary.shard_id),
            ).inc(skipped)
        for entry in self.replica_translog[:valid]:
            source = dict(entry.source or {})
            if entry.op == "index":
                if not engine.contains(entry.doc_id) or engine.get(
                    entry.doc_id
                ).source != source:
                    engine.index(source)
            elif entry.op == "update":
                if not engine.contains(entry.doc_id):
                    engine.index(source)
                elif engine.get(entry.doc_id).source != source:
                    # Translog updates carry the full merged source, so the
                    # update is idempotent when re-applied over segment state.
                    engine.update(entry.doc_id, source)
            elif entry.op == "delete" and engine.contains(entry.doc_id):
                engine.delete(entry.doc_id)
        return engine

    def rehome(self, new_primary: ShardEngine) -> None:
        """Re-attach this replica to a freshly promoted primary (failover).

        The promoted engine's sealed segments and translog are the new
        authoritative epoch: pending ship queues from the dead primary are
        dropped (the next round's segment diff reconciles the replica
        against the new primary's segment list) and the replica's translog
        is re-seeded from the new primary so a second failover replays the
        new epoch, not the old one.
        """
        self.primary = new_primary
        new_primary.on_refresh(self._on_primary_refresh)
        new_primary.on_merge(self._on_primary_merge)
        self._pending_refreshed = []
        self._pending_merged = []
        self.replica_translog = list(new_primary.translog._entries)
