"""Replication accounting: CPU cost and visibility delay.

Tracks the two quantities Figure 15 and §5.2 discuss: how much CPU the
replica side spends (re-indexing under logical replication vs byte copying
under physical replication) and the *visibility delay* — the gap between a
segment becoming searchable on the primary and on the replica.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ReplicationAccounting:
    """Cumulative counters for one primary/replica pair.

    CPU is counted in the same abstract units as
    :attr:`repro.storage.engine.EngineStats.indexing_cost`, so logical and
    physical replication are directly comparable. Byte copies are charged
    ``copy_cost_per_byte`` units per byte (sequential I/O is far cheaper
    than re-indexing).
    """

    copy_cost_per_byte: float = 0.001
    replica_cpu: float = 0.0
    bytes_copied: int = 0
    segments_copied: int = 0
    segments_skipped: int = 0  # already present on replica (diff hit)
    visibility_delays: list = field(default_factory=list)

    def charge_reindex(self, indexing_cost: float) -> None:
        """Replica re-executed a write (logical replication)."""
        self.replica_cpu += indexing_cost

    def charge_copy(self, num_bytes: int) -> None:
        """Replica copied segment bytes (physical replication)."""
        self.bytes_copied += num_bytes
        self.segments_copied += 1
        self.replica_cpu += num_bytes * self.copy_cost_per_byte

    def note_skip(self) -> None:
        self.segments_skipped += 1

    def note_visibility(self, primary_time: float, replica_time: float) -> None:
        """Record one segment's visibility delay."""
        self.visibility_delays.append(max(replica_time - primary_time, 0.0))

    @property
    def max_visibility_delay(self) -> float:
        return max(self.visibility_delays, default=0.0)

    @property
    def avg_visibility_delay(self) -> float:
        if not self.visibility_delays:
            return 0.0
        return sum(self.visibility_delays) / len(self.visibility_delays)
