"""Logical replication: the replica re-executes every write.

This is Elasticsearch's default document replication: the primary forwards
each successfully executed write to its replicas, which run the full
indexing pipeline again. Correct, simple — and it doubles the cluster's
indexing CPU, which is exactly the overhead Figure 15 measures and ESDB's
physical replication removes.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.replication.costs import ReplicationAccounting
from repro.storage.engine import ShardEngine


class LogicalReplicator:
    """Keeps a replica engine in sync by re-executing forwarded writes."""

    def __init__(
        self,
        primary: ShardEngine,
        replica: ShardEngine,
        accounting: ReplicationAccounting | None = None,
    ) -> None:
        self.primary = primary
        self.replica = replica
        self.accounting = accounting or ReplicationAccounting()

    # -- forwarded write path ------------------------------------------------
    def index(self, source: Mapping[str, Any]) -> int:
        """Execute a write on the primary, then re-execute it on the replica."""
        row_id = self.primary.index(source)
        cost_before = self.replica.stats.indexing_cost
        self.replica.index(source)
        self.accounting.charge_reindex(self.replica.stats.indexing_cost - cost_before)
        return row_id

    def update(self, doc_id: object, changes: Mapping[str, Any]) -> int:
        row_id = self.primary.update(doc_id, changes)
        cost_before = self.replica.stats.indexing_cost
        self.replica.update(doc_id, changes)
        self.accounting.charge_reindex(self.replica.stats.indexing_cost - cost_before)
        return row_id

    def delete(self, doc_id: object) -> None:
        self.primary.delete(doc_id)
        self.replica.delete(doc_id)

    def refresh(self, now: float = 0.0) -> None:
        """Refresh both copies; under logical replication the replica builds
        its own segments, so visibility is immediate but CPU is doubled."""
        self.primary.refresh()
        self.replica.refresh()
        self.accounting.note_visibility(now, now)

    def in_sync(self) -> bool:
        """True when both copies hold the same live documents."""
        return self.primary.doc_count() == self.replica.doc_count() and all(
            self.replica.contains(doc.doc_id)
            for _, doc in self.primary.iter_documents()
        )
