"""Replica sets: one primary, many physically replicated copies.

The paper's deployment runs one replica per shard, but the mechanism of
§5.2 — translog forwarding plus segment shipping — generalizes to any
replica count. :class:`ReplicaSet` broadcasts both channels to every
replica, tracks their sync state independently (a slow replica must not
stall the others), and performs primary election among the copies on
failover.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReplicationError
from repro.replication.costs import ReplicationAccounting
from repro.replication.physical import PhysicalReplicator
from repro.storage.engine import ShardEngine


@dataclass(frozen=True)
class ReplicaStatus:
    """Point-in-time sync state of one replica."""

    name: str
    in_sync: bool
    doc_count: int
    translog_entries: int
    bytes_copied: int


class ReplicaSet:
    """A primary shard engine plus N physical replicas."""

    def __init__(self, primary: ShardEngine, num_replicas: int = 1,
                 network_seconds_per_byte: float = 0.0, telemetry=None,
                 replicate_retries: int = 2) -> None:
        if num_replicas < 1:
            raise ReplicationError("a replica set needs at least one replica")
        if replicate_retries < 0:
            raise ReplicationError("replicate_retries must be >= 0")
        self.primary = primary
        self.telemetry = telemetry
        self.replicate_retries = replicate_retries
        self.replicators: dict[str, PhysicalReplicator] = {}
        for index in range(num_replicas):
            name = f"replica-{index}"
            self.replicators[name] = PhysicalReplicator(
                primary,
                accounting=ReplicationAccounting(),
                network_seconds_per_byte=network_seconds_per_byte,
                telemetry=telemetry,
            )

    # -- write path -----------------------------------------------------------
    def index(self, source: dict) -> int:
        """Write through the primary, forwarding the translog entry to every
        replica in real time (§5.2's durability channel)."""
        row_id = self.primary.index(source)
        entry = self.primary.translog._entries[-1]
        for replicator in self.replicators.values():
            replicator.sync_translog_entry(entry)
        return row_id

    def update(self, doc_id: object, changes: dict) -> int:
        row_id = self.primary.update(doc_id, changes)
        entry = self.primary.translog._entries[-1]
        for replicator in self.replicators.values():
            replicator.sync_translog_entry(entry)
        return row_id

    def delete(self, doc_id: object) -> None:
        self.primary.delete(doc_id)
        entry = self.primary.translog._entries[-1]
        for replicator in self.replicators.values():
            replicator.sync_translog_entry(entry)

    # -- replication rounds -------------------------------------------------------
    def replicate_all(self, now: float | None = None) -> int:
        """Run one quick incremental round on every replica; returns how
        many replicas finished in sync. A replica that raises keeps the
        others replicating (slow/faulty replicas must not block the set).

        A failed round is retried up to ``replicate_retries`` times with an
        exponentially growing (simulated) backoff added to the replica's
        clock: a retry rebuilds the snapshot from scratch, which resolves
        the common transient where a segment the previous snapshot named
        was merged away mid-round.
        """
        synced = 0
        errors: list[str] = []
        retry_counter = (
            self.telemetry.metrics.counter("replication_retries_total")
            if self.telemetry is not None
            else None
        )
        for name, replicator in self.replicators.items():
            last_error: ReplicationError | None = None
            for attempt in range(1 + self.replicate_retries):
                if attempt and retry_counter is not None:
                    retry_counter.inc()
                try:
                    backoff = 0.01 * (2 ** attempt - 1)
                    replicator.replicate(None if now is None else now + backoff)
                    last_error = None
                    break
                except ReplicationError as exc:
                    last_error = exc
            if last_error is not None:
                errors.append(f"{name}: {last_error}")
                continue
            if replicator.in_sync():
                synced += 1
        if errors and synced == 0:
            raise ReplicationError("; ".join(errors))
        return synced

    # -- introspection -----------------------------------------------------------
    def status(self) -> list[ReplicaStatus]:
        out = []
        for name, replicator in self.replicators.items():
            out.append(
                ReplicaStatus(
                    name=name,
                    in_sync=replicator.in_sync(),
                    doc_count=replicator.replica_doc_count(),
                    translog_entries=len(replicator.replica_translog),
                    bytes_copied=replicator.accounting.bytes_copied,
                )
            )
        return out

    def in_sync_count(self) -> int:
        return sum(1 for s in self.status() if s.in_sync)

    # -- failover -----------------------------------------------------------------
    def promote(self, name: str | None = None) -> ShardEngine:
        """Promote a replica to primary (primary/replica switch).

        Picks the most up-to-date replica (longest *valid* translog prefix —
        a corrupted log must not win the election) when *name* is omitted,
        then **rewires the set**: the promoted engine becomes
        :attr:`primary`, the promoted copy leaves :attr:`replicators`, and
        every remaining replica is re-homed onto the new primary so
        subsequent :meth:`index`/:meth:`update`/:meth:`delete` calls and
        replication rounds target the live engine, not the dead one.
        """
        if not self.replicators:
            raise ReplicationError("no replicas to promote")
        if name is None:
            name = max(
                self.replicators,
                key=lambda n: (
                    self.replicators[n].valid_translog_prefix(),
                    # Tie-break deterministically on the lowest index.
                    -int(n.rsplit("-", 1)[-1]) if n.rsplit("-", 1)[-1].isdigit() else 0,
                ),
            )
        if name not in self.replicators:
            raise ReplicationError(f"unknown replica {name!r}")
        promoted = self.replicators.pop(name).promote_replica()
        # Seal the replayed operations so the re-homed replicas can receive
        # them as segments in the next replication round.
        promoted.refresh()
        self.primary = promoted
        for replicator in self.replicators.values():
            replicator.rehome(promoted)
        return promoted
