"""Replication: logical (Elasticsearch) vs physical (ESDB, §5.2).

Both schemes keep the replica's translog synchronized in real time (the
durability path). They differ in how the replica's *searchable* state is
built:

* logical replication re-executes every write on the replica — doubling the
  cluster's indexing CPU;
* physical replication ships sealed segment files: snapshot list, segment
  diff, quick incremental replication of refreshed segments, and
  pre-replication of merged segments so big merges never delay fresh data.
"""

from repro.replication.costs import ReplicationAccounting
from repro.replication.logical import LogicalReplicator
from repro.replication.physical import PhysicalReplicator, SegmentSnapshot
from repro.replication.replicaset import ReplicaSet, ReplicaStatus

__all__ = [
    "LogicalReplicator",
    "PhysicalReplicator",
    "SegmentSnapshot",
    "ReplicationAccounting",
    "ReplicaSet",
    "ReplicaStatus",
]
