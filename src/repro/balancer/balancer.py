"""The ESDB load balancer (Algorithm 1 of the paper).

Two phases:

* **Initialization** — offsets are derived from each tenant's *storage*
  share, on the assumption that tenants holding more data will receive more
  writes. Most tenants get ``s = 1`` (single shard) to keep queries cheap.
* **Runtime** — each reporting period, tenants whose *write-throughput*
  share crosses the hotspot threshold get a (larger) offset. Offsets are
  powers of two, which bounds the number of distinct rules and keeps rule
  matching fast.

The balancer itself never mutates the routing table directly: it emits
proposed rules, and the caller commits them through the consensus protocol
(or directly in single-process tests via :meth:`LoadBalancer.commit`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.balancer.monitor import WorkloadMonitor
from repro.errors import ConfigurationError
from repro.routing.rules import RuleList


def compute_offset_size(share: float, num_shards: int, target_share_per_shard: float) -> int:
    """Return the power-of-two offset ``s`` for a tenant with write/storage
    *share* (``ComputeOffsetSize`` of Algorithm 1).

    The intent is that after splitting, each of the tenant's ``s`` shards
    carries at most ``target_share_per_shard`` of the total workload:
    ``s = 2^ceil(log2(share / target))``, clamped to ``[1, num_shards]`` and
    rounded to a power of two so the rule list stays small (§4.2).
    """
    if not 0.0 <= share <= 1.0:
        raise ConfigurationError(f"share must be in [0, 1], got {share}")
    if target_share_per_shard <= 0:
        raise ConfigurationError("target_share_per_shard must be positive")
    s = 1
    while share / s > target_share_per_shard and s < num_shards:
        s *= 2
    return min(s, num_shards)


@dataclass(frozen=True)
class BalancerConfig:
    """Tuning knobs for the load balancer.

    Attributes:
        hotspot_share: minimum write-throughput share for a tenant to be
            treated as a hotspot at runtime (``CheckHotSpot``).
        target_share_per_shard: desired per-shard share after splitting;
            drives ``ComputeOffsetSize``.
        init_storage_share: minimum storage share for a tenant to receive
            ``s > 1`` during initialization.
        max_offset: cap on ``s`` (defaults to the double-hashing upper bound
            used in the paper's cluster, one full node's worth of shards).
    """

    hotspot_share: float = 0.01
    target_share_per_shard: float = 0.004
    init_storage_share: float = 0.01
    max_offset: int | None = None

    def __post_init__(self) -> None:
        if not 0 < self.hotspot_share <= 1:
            raise ConfigurationError("hotspot_share must be in (0, 1]")
        if not 0 < self.init_storage_share <= 1:
            raise ConfigurationError("init_storage_share must be in (0, 1]")


@dataclass(frozen=True)
class ProposedRule:
    """A rule the balancer wants committed: tenant *k* adopts offset *s*
    from effective time *t* (decided later by the consensus master)."""

    tenant_id: object
    offset: int


class LoadBalancer:
    """Implements Algorithm 1 against a :class:`WorkloadMonitor`.

    The balancer remembers the offset already granted to each tenant and only
    proposes a rule when the newly computed offset is *larger* — offsets never
    shrink, matching the append-only rule list (historical records must stay
    reachable).
    """

    def __init__(
        self,
        monitor: WorkloadMonitor,
        num_shards: int,
        config: BalancerConfig | None = None,
    ) -> None:
        if num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        self.monitor = monitor
        self.num_shards = num_shards
        self.config = config or BalancerConfig()
        self._granted: dict[object, int] = {}

    @property
    def _offset_cap(self) -> int:
        cap = self.config.max_offset or self.num_shards
        return min(cap, self.num_shards)

    def granted_offset(self, tenant_id: object) -> int:
        """Return the offset most recently granted to *tenant_id* (1 if none)."""
        return self._granted.get(tenant_id, 1)

    def _compute(self, share: float) -> int:
        s = compute_offset_size(share, self.num_shards, self.config.target_share_per_shard)
        return min(s, self._offset_cap)

    def initialize(self) -> list[ProposedRule]:
        """Initialization phase (Algorithm 1, lines 5–10): derive offsets from
        storage shares. Returns the proposed rules (possibly empty)."""
        proposals = []
        for tenant, share in self.monitor.storage_shares().items():
            if share < self.config.init_storage_share:
                continue  # small tenants stay on a single shard (s = 1)
            offset = self._compute(share)
            if offset > self.granted_offset(tenant):
                self._granted[tenant] = offset
                proposals.append(ProposedRule(tenant, offset))
        return proposals

    def check_hotspot(self, share: float) -> bool:
        """``CheckHotSpot`` (Algorithm 1, line 16)."""
        return share >= self.config.hotspot_share

    def rebalance(self) -> list[ProposedRule]:
        """Runtime phase (Algorithm 1, lines 11–21): propose larger offsets
        for tenants whose current write share marks them as hotspots."""
        proposals = []
        for tenant, share in self.monitor.shares().items():
            if not self.check_hotspot(share):
                continue
            offset = self._compute(share)
            if offset > self.granted_offset(tenant):
                self._granted[tenant] = offset
                proposals.append(ProposedRule(tenant, offset))
        return proposals

    def retract(self, proposal: ProposedRule) -> None:
        """Forget a proposal whose consensus round aborted.

        The tenant's granted offset is dropped so the next reporting window
        re-proposes it; re-proposing an offset that did commit elsewhere is
        harmless because equal ``(t, s)`` rules merge in the rule list.
        """
        if self._granted.get(proposal.tenant_id) == proposal.offset:
            del self._granted[proposal.tenant_id]

    @staticmethod
    def commit(rules: RuleList, proposals: list[ProposedRule], effective_time: float) -> None:
        """Commit *proposals* straight into *rules* at *effective_time*.

        Single-process shortcut used by tests and the simulator's
        zero-failure path; the distributed path goes through
        :mod:`repro.consensus` instead.
        """
        for proposal in proposals:
            rules.update(effective_time, proposal.offset, proposal.tenant_id)
