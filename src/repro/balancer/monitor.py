"""Workload monitor: windowed per-tenant write-throughput statistics (§3.2).

The monitor is the control-layer component that "collects metrics for
workload balancing": every write is recorded against its tenant, and at the
end of each reporting period the balancer pulls a per-tenant throughput
snapshot. Storage per tenant is tracked cumulatively for the initialization
phase of Algorithm 1.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass
class TenantStats:
    """A point-in-time view of one tenant's load.

    Attributes:
        tenant_id: tenant identifier.
        writes: writes observed in the last closed window.
        share: this tenant's fraction of the window's total writes
            (the ``r`` of Algorithm 1, line 15).
        storage: cumulative records stored for this tenant.
    """

    tenant_id: object
    writes: int
    share: float
    storage: int


@dataclass
class WorkloadMonitor:
    """Collects per-tenant write counts in fixed windows.

    The monitor is deliberately simple — Alibaba's production monitor reports
    periodic throughput proportions, and that is exactly the interface
    Algorithm 1 consumes (``T(K)`` at line 13, ``S(K)`` at line 5).

    Args:
        window_seconds: length of one reporting window.
    """

    window_seconds: float = 10.0
    _current: Counter = field(default_factory=Counter, repr=False)
    _storage: Counter = field(default_factory=Counter, repr=False)
    _window_start: float = 0.0
    _last_window: Counter = field(default_factory=Counter, repr=False)
    _last_window_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise ConfigurationError("window_seconds must be positive")

    def record_write(self, tenant_id: object, now: float, count: int = 1) -> None:
        """Record *count* writes for *tenant_id* at time *now*.

        Rolls the window automatically when *now* passes the window boundary.
        """
        if now - self._window_start >= self.window_seconds:
            self.roll_window(now)
        self._current[tenant_id] += count
        self._storage[tenant_id] += count

    def roll_window(self, now: float) -> None:
        """Close the current window, making it available to :meth:`throughput`."""
        elapsed = max(now - self._window_start, 1e-9)
        self._last_window = self._current
        self._last_window_seconds = min(elapsed, self.window_seconds) or self.window_seconds
        self._current = Counter()
        self._window_start = now

    def throughput(self) -> dict:
        """Return {tenant_id: writes/sec} for the last closed window."""
        if not self._last_window:
            return {}
        seconds = self._last_window_seconds or self.window_seconds
        return {k: v / seconds for k, v in self._last_window.items()}

    def shares(self) -> dict:
        """Return {tenant_id: fraction of window writes} — ``r`` in Algorithm 1."""
        total = sum(self._last_window.values())
        if total == 0:
            return {}
        return {k: v / total for k, v in self._last_window.items()}

    def storage(self) -> dict:
        """Return {tenant_id: cumulative records stored} — ``S(K)``."""
        return dict(self._storage)

    def storage_shares(self) -> dict:
        """Return {tenant_id: fraction of total storage}."""
        total = sum(self._storage.values())
        if total == 0:
            return {}
        return {k: v / total for k, v in self._storage.items()}

    def seed_storage(self, storage: dict) -> None:
        """Preload cumulative storage (used when attaching the monitor to an
        existing cluster whose shards already hold data)."""
        self._storage = Counter(storage)

    def stats(self) -> list[TenantStats]:
        """Return a combined snapshot sorted by descending write share."""
        shares = self.shares()
        out = [
            TenantStats(
                tenant_id=tenant,
                writes=self._last_window[tenant],
                share=share,
                storage=self._storage.get(tenant, 0),
            )
            for tenant, share in shares.items()
        ]
        out.sort(key=lambda s: s.share, reverse=True)
        return out
