"""Workload monitor: windowed per-tenant write-throughput statistics (§3.2).

The monitor is the control-layer component that "collects metrics for
workload balancing": every write lands in a per-tenant counter
(``esdb_tenant_writes_total``) of a :class:`~repro.telemetry.MetricsRegistry`,
and at the end of each reporting period the balancer pulls a per-tenant
throughput snapshot computed from counter deltas. Storage per tenant is
tracked cumulatively for the initialization phase of Algorithm 1.

The registry may be shared (the ESDB facade passes its telemetry registry,
with an ``instance`` label separating facades), in which case the monitor's
raw counters show up in metric exports alongside everything else.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.runtime import NullRegistry

TENANT_WRITES_METRIC = "esdb_tenant_writes_total"


@dataclass
class TenantStats:
    """A point-in-time view of one tenant's load.

    Attributes:
        tenant_id: tenant identifier.
        writes: writes observed in the last closed window.
        share: this tenant's fraction of the window's total writes
            (the ``r`` of Algorithm 1, line 15).
        storage: cumulative records stored for this tenant.
    """

    tenant_id: object
    writes: int
    share: float
    storage: int


class WorkloadMonitor:
    """Collects per-tenant write counts in fixed windows.

    The monitor is deliberately simple — Alibaba's production monitor reports
    periodic throughput proportions, and that is exactly the interface
    Algorithm 1 consumes (``T(K)`` at line 13, ``S(K)`` at line 5).

    Writes accumulate in cumulative registry counters; window statistics are
    deltas against the counter values captured at the last window roll.

    Args:
        window_seconds: length of one reporting window.
        registry: metrics registry to count in; a private one is created
            when omitted (or when a no-op registry is passed, so a disabled
            telemetry domain never breaks balancing).
        labels: extra labels stamped on every tenant counter (e.g. the
            facade's ``instance``), keeping monitors on a shared registry
            from interfering with each other.
    """

    def __init__(
        self,
        window_seconds: float = 10.0,
        registry: MetricsRegistry | None = None,
        labels: dict | None = None,
    ) -> None:
        if window_seconds <= 0:
            raise ConfigurationError("window_seconds must be positive")
        self.window_seconds = window_seconds
        if registry is None or isinstance(registry, NullRegistry):
            registry = MetricsRegistry()
        self.registry = registry
        self._labels = dict(labels or {})
        self._counters: dict = {}  # tenant -> Counter metric
        self._window_base: dict = {}  # tenant -> counter value at window start
        self._storage_base: dict = {}  # tenant -> counter value at seed time
        self._storage_seed: Counter = Counter()
        self._window_start = 0.0
        self._last_window: Counter = Counter()
        self._last_window_seconds = 0.0

    def _counter(self, tenant_id: object):
        counter = self._counters.get(tenant_id)
        if counter is None:
            counter = self.registry.counter(
                TENANT_WRITES_METRIC, tenant=str(tenant_id), **self._labels
            )
            self._counters[tenant_id] = counter
        return counter

    def record_write(self, tenant_id: object, now: float, count: int = 1) -> None:
        """Record *count* writes for *tenant_id* at time *now*.

        Rolls the window automatically when *now* passes the window boundary.
        """
        if now - self._window_start >= self.window_seconds:
            self.roll_window(now)
        self._counter(tenant_id).inc(count)

    def roll_window(self, now: float) -> None:
        """Close the current window, making it available to :meth:`throughput`."""
        elapsed = max(now - self._window_start, 1e-9)
        window = Counter()
        for tenant, counter in self._counters.items():
            delta = counter.value - self._window_base.get(tenant, 0.0)
            if delta:
                window[tenant] = int(delta)
            self._window_base[tenant] = counter.value
        self._last_window = window
        self._last_window_seconds = min(elapsed, self.window_seconds) or self.window_seconds
        self._window_start = now

    def throughput(self) -> dict:
        """Return {tenant_id: writes/sec} for the last closed window."""
        if not self._last_window:
            return {}
        seconds = self._last_window_seconds or self.window_seconds
        return {k: v / seconds for k, v in self._last_window.items()}

    def shares(self) -> dict:
        """Return {tenant_id: fraction of window writes} — ``r`` in Algorithm 1."""
        total = sum(self._last_window.values())
        if total == 0:
            return {}
        return {k: v / total for k, v in self._last_window.items()}

    def _storage_for(self, tenant_id: object) -> int:
        counter = self._counters.get(tenant_id)
        written = counter.value - self._storage_base.get(tenant_id, 0.0) if counter else 0.0
        return int(self._storage_seed.get(tenant_id, 0) + written)

    def storage(self) -> dict:
        """Return {tenant_id: cumulative records stored} — ``S(K)``."""
        tenants = set(self._storage_seed) | set(self._counters)
        out = {}
        for tenant in tenants:
            total = self._storage_for(tenant)
            if total:
                out[tenant] = total
        return out

    def storage_shares(self) -> dict:
        """Return {tenant_id: fraction of total storage}."""
        storage = self.storage()
        total = sum(storage.values())
        if total == 0:
            return {}
        return {k: v / total for k, v in storage.items()}

    def seed_storage(self, storage: dict) -> None:
        """Preload cumulative storage (used when attaching the monitor to an
        existing cluster whose shards already hold data). Replaces any
        storage accumulated so far, matching the historical semantics."""
        self._storage_seed = Counter(storage)
        self._storage_base = {
            tenant: counter.value for tenant, counter in self._counters.items()
        }

    def stats(self) -> list[TenantStats]:
        """Return a combined snapshot sorted by descending write share."""
        shares = self.shares()
        out = [
            TenantStats(
                tenant_id=tenant,
                writes=self._last_window[tenant],
                share=share,
                storage=self._storage_for(tenant),
            )
            for tenant, share in shares.items()
        ]
        out.sort(key=lambda s: s.share, reverse=True)
        return out
