"""ESDB's load balancer: workload monitoring + Algorithm 1.

The balancer watches per-tenant write throughput (and, at initialization,
storage share), detects hotspots, computes a power-of-two secondary-hashing
offset per hot tenant, and proposes the resulting rules — via the consensus
layer — for inclusion in the cluster-wide :class:`~repro.routing.RuleList`.
"""

from repro.balancer.balancer import BalancerConfig, LoadBalancer, compute_offset_size
from repro.balancer.monitor import TenantStats, WorkloadMonitor

__all__ = [
    "WorkloadMonitor",
    "TenantStats",
    "LoadBalancer",
    "BalancerConfig",
    "compute_offset_size",
]
