"""The fluid-flow write simulation.

Each tick:

1. the scenario supplies an arrival rate; a seeded sample of writes is drawn
   from the workload generator and routed through the *real* policy object,
   giving the per-shard arrival distribution (sample counts scaled to rate);
2. shard mass maps to per-node work: primary cost on the primary's node and
   replica cost on the replica's node (cost model);
3. **head-of-line blocking** (§3.1): write clients buffer workloads in a
   queue and dispatch batches to workers; when any worker is overloaded the
   queue blocks. The simulator therefore admits writes only as fast as the
   *most loaded* node can absorb its share — the mechanism behind Figure
   13a, where with hashing the hotspot's node pair runs at full capacity
   while every other node idles. Un-dispatched writes queue at the client
   and their wait is the paper's *write delay*;
4. for the dynamic policy, per-tenant counts feed the monitor; every balance
   window the balancer proposes rules which commit through the consensus
   master and take effect ``T`` seconds later — the routing change happens
   exactly at the committed effective time because router and simulator
   share one rule list.

Setting ``hol_blocking=False`` switches to independent per-node queues (no
client back-pressure); the ablation bench uses this to show the blocking
model is what produces the paper's hashing collapse.

The model deliberately omits per-write event scheduling: at 160K writes/s x
15 min the paper's workloads are beyond per-event simulation in Python, and
the phenomena under study (saturation points, backlog growth, imbalance)
are flow-level. See DESIGN.md for the substitution argument.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.balancer import BalancerConfig, LoadBalancer, WorkloadMonitor
from repro.consensus import ConsensusConfig, ConsensusMaster, Participant, RuleProposal
from repro.errors import ConsensusAborted, SimulationError
from repro.obsv.skew import (
    SkewWindow,
    WindowStats,
    annotation_reason,
    detect_alerts,
    rule_measurement,
    summarize_windows,
)
from repro.routing import DynamicSecondaryHashRouting, RoutingPolicy
from repro.sim.metrics import MetricsCollector, SimulationReport
from repro.sim.models import ReplicationCostModel, SimulationConfig
from repro.telemetry.timeseries import TimeSeriesStore
from repro.workload.generator import TransactionLogGenerator, WorkloadConfig
from repro.workload.scenarios import Scenario


@dataclass
class _NodeState:
    """Mutable per-node queueing state (in service units)."""

    capacity: float
    backlog: float = 0.0

    def serve(self, arriving_work: float, tick_seconds: float) -> float:
        """Serve up to capacity*tick; returns work completed this tick."""
        available = self.capacity * tick_seconds
        total = self.backlog + arriving_work
        served = min(total, available)
        self.backlog = total - served
        return served

    def wait_time(self) -> float:
        """Backlog drain time — the queueing delay a new arrival sees."""
        return self.backlog / self.capacity


class WriteSimulation:
    """Simulates one routing policy under one workload scenario."""

    def __init__(
        self,
        policy: RoutingPolicy,
        scenario: Scenario,
        config: SimulationConfig | None = None,
        workload: WorkloadConfig | None = None,
        replication: ReplicationCostModel | None = None,
        balancer_config: BalancerConfig | None = None,
        hol_blocking: bool = True,
        hotspot_isolation: bool = False,
        isolation_threshold: float = 0.02,
    ) -> None:
        self.config = config or SimulationConfig()
        if policy.num_shards != self.config.num_shards:
            raise SimulationError(
                f"policy covers {policy.num_shards} shards, config expects "
                f"{self.config.num_shards}"
            )
        self.policy = policy
        self.scenario = scenario
        self.replication = replication or ReplicationCostModel.logical()
        self.hol_blocking = hol_blocking
        self.hotspot_isolation = hotspot_isolation
        self.isolation_threshold = isolation_threshold
        self._hot_backlog = 0.0  # hotspot-queue writes (isolation mode)
        #: (time, ordinary_wait, hotspot_wait) per tick in isolation mode.
        self.isolation_delays: list[tuple[float, float, float]] = []
        self.generator = TransactionLogGenerator(
            workload or WorkloadConfig(seed=self.config.seed)
        )
        self.metrics = MetricsCollector(self.config.num_nodes, self.config.num_shards)
        self._nodes = [
            _NodeState(capacity=self.config.node_capacity)
            for _ in range(self.config.num_nodes)
        ]
        # Shard placement: primary on shard % nodes, replica on the next node
        # (never co-located), matching repro.cluster's allocation invariant.
        shards = np.arange(self.config.num_shards)
        self._primary_node = shards % self.config.num_nodes
        self._replica_node = (shards + 1) % self.config.num_nodes
        self._rng = random.Random(self.config.seed + 7)
        self._client_backlog = 0.0  # writes waiting in the client queue
        self._work_ewma: np.ndarray | None = None  # smoothed node-load estimate

        # Dynamic-policy machinery (inert for static policies).
        self._is_dynamic = isinstance(policy, DynamicSecondaryHashRouting)
        self.monitor = WorkloadMonitor(window_seconds=self.config.balance_window)
        self.balancer = LoadBalancer(
            self.monitor, self.config.num_shards, balancer_config or BalancerConfig()
        )
        participants = [Participant(f"node-{i}") for i in range(self.config.num_nodes)]
        self.consensus = ConsensusMaster(
            participants,
            ConsensusConfig(effective_interval=self.config.consensus_interval),
        )
        self._next_balance_time = self.config.balance_window
        self.rule_commits: list[tuple[float, object, int]] = []

        # Live skew analytics (repro.obsv): the routed sample stream feeds a
        # tumbling window aligned with the balance window, so every alert
        # and rule commit can point at one closed window's measurement.
        self.skew = SkewWindow(
            self.config.num_shards, window_seconds=self.config.balance_window
        )
        self.skew_alerts: list = []

        # Performance history: bounded per-tick model series, fed directly
        # (no registry) on the simulation's logical clock. The same ring
        # bound as the facade store applies, so week-long scenario runs
        # keep O(capacity) history per series.
        self.timeseries = TimeSeriesStore(
            interval=self.config.tick_seconds, capacity=512
        )
        #: Realized arrival statistics (set after ``run`` for scenarios
        #: that carry an :class:`~repro.workload.arrivals.ArrivalStats`).
        self.arrival_stats = None

    # -- main loop -----------------------------------------------------------
    def run(self) -> SimulationReport:
        """Run the scenario to completion; returns the steady-state report."""
        live_count = getattr(self.scenario, "live_tenant_count", None)
        for tick in self.scenario.ticks():
            self.scenario.apply(self.generator, tick)
            self._step(tick.time, tick.rate)
            if live_count is not None:
                self.timeseries.record(
                    "workload.live_tenants", tick.time, float(live_count(tick.time))
                )
        # Arrival-driven scenarios accumulate realized-stream statistics
        # (interarrival quantiles, burstiness) as their ticks are drawn;
        # surface them for reports and the dashboard.
        self.arrival_stats = getattr(self.scenario, "stats", None)
        return self.metrics.report(warmup=self._warmup_seconds())

    def _warmup_seconds(self) -> float:
        return min(self.scenario.duration * 0.2, 30.0)

    def _step(self, now: float, rate: float) -> None:
        cfg = self.config
        sample_size = min(cfg.sample_per_tick, max(int(rate * cfg.tick_seconds), 1))

        # Route a representative sample through the real policy to get the
        # current per-shard distribution of the write stream. When hotspot
        # isolation is on, per-tenant sample counts split the stream into a
        # hotspot substream and an ordinary substream (§3.1).
        shard_fraction = np.zeros(cfg.num_shards)
        samples: list[tuple[object, int]] = []
        tenant_counts: dict[object, int] = {}
        for _ in range(sample_size):
            tenant = self.generator.tenants.sample()
            record_id = self._rng.getrandbits(48)
            shard = self.policy.route_write(tenant, record_id, created_time=now)
            shard_fraction[shard] += 1.0
            samples.append((tenant, shard))
            tenant_counts[tenant] = tenant_counts.get(tenant, 0) + 1
            self.skew.record(tenant, shard)
            if self._is_dynamic:
                self.monitor.record_write(tenant, now, count=1)
        shard_fraction /= sample_size

        hot_shard_fraction = None
        if self.hotspot_isolation:
            hot_tenants = {
                tenant
                for tenant, count in tenant_counts.items()
                if count / sample_size >= self.isolation_threshold
            }
            hot_shard_fraction = np.zeros(cfg.num_shards)
            for tenant, shard in samples:
                if tenant in hot_tenants:
                    hot_shard_fraction[shard] += 1.0
            hot_shard_fraction /= sample_size

        # Per-write work each node receives (service units per admitted write).
        node_work_per_write = np.zeros(cfg.num_nodes)
        np.add.at(
            node_work_per_write,
            self._primary_node,
            shard_fraction * self.replication.primary_write_cost,
        )
        np.add.at(
            node_work_per_write,
            self._replica_node,
            shard_fraction * self.replication.replica_write_cost,
        )

        # Smooth the load estimate across ticks: real dispatchers average
        # queue-depth signals over many batches, so per-tick multinomial
        # sampling noise should not drive the admission decision.
        if self._work_ewma is None or self._work_ewma.shape != node_work_per_write.shape:
            self._work_ewma = node_work_per_write.copy()
        else:
            alpha = 0.2
            self._work_ewma = alpha * node_work_per_write + (1 - alpha) * self._work_ewma
        smoothed_work = self._work_ewma

        offered = rate * cfg.tick_seconds

        if self.hotspot_isolation and hot_shard_fraction is not None:
            admitted, node_served, client_wait = self._dispatch_isolated(
                now, offered, rate, shard_fraction, hot_shard_fraction
            )
        else:
            dispatchable = self._client_backlog + offered
            if self.hol_blocking:
                admitted, node_served = self._dispatch_blocking(
                    dispatchable, smoothed_work, cfg.tick_seconds
                )
            else:
                admitted, node_served = self._dispatch_unblocked(
                    dispatchable, smoothed_work, cfg.tick_seconds
                )
            self._client_backlog = dispatchable - admitted
            max_backlog = rate * cfg.max_queue_seconds
            self._client_backlog = min(self._client_backlog, max_backlog)
            admit_rate = max(admitted / cfg.tick_seconds, 1e-9)
            client_wait = self._client_backlog / admit_rate
        node_waits = np.array([node.wait_time() for node in self._nodes])
        avg_delay = cfg.base_write_latency + client_wait + float(
            np.average(node_waits, weights=node_work_per_write + 1e-12)
        )
        max_delay = cfg.base_write_latency + client_wait + float(node_waits.max())

        node_cpu = node_served / (cfg.node_capacity * cfg.tick_seconds)
        primary_per_write = np.zeros(cfg.num_nodes)
        np.add.at(
            primary_per_write,
            self._primary_node,
            shard_fraction * self.replication.primary_write_cost,
        )
        with np.errstate(invalid="ignore", divide="ignore"):
            primary_share = np.where(
                node_work_per_write > 0, primary_per_write / node_work_per_write, 0.0
            )
        node_throughput = (
            node_served * primary_share / self.replication.primary_write_cost
        ) / cfg.tick_seconds

        completed = float(node_throughput.sum() * cfg.tick_seconds)
        self.metrics.record_tick(
            time=now,
            offered=offered,
            completed=completed,
            avg_delay=avg_delay,
            max_delay=max_delay,
            node_throughput=node_throughput,
            node_cpu=node_cpu,
            shard_throughput=shard_fraction * admitted,
        )
        self.timeseries.record("sim.offered_rate", now, rate)
        self.timeseries.record("sim.throughput", now, completed / cfg.tick_seconds)
        self.timeseries.record("sim.avg_delay", now, avg_delay)
        self.timeseries.record("sim.max_delay", now, max_delay)
        self.timeseries.record("sim.client_backlog", now, self._client_backlog)

        if self._is_dynamic and now >= self._next_balance_time:
            self._rebalance(now)
            self._next_balance_time = now + self.config.balance_window
        elif not self._is_dynamic and self.skew.due(now):
            self._roll_skew(now)

    def _node_work(self, shard_mass: np.ndarray) -> np.ndarray:
        """Map per-shard write mass to per-node service work."""
        work = np.zeros(self.config.num_nodes)
        np.add.at(
            work, self._primary_node, shard_mass * self.replication.primary_write_cost
        )
        np.add.at(
            work, self._replica_node, shard_mass * self.replication.replica_write_cost
        )
        return work

    def _dispatch_isolated(
        self,
        now: float,
        offered: float,
        rate: float,
        shard_fraction: np.ndarray,
        hot_shard_fraction: np.ndarray,
    ) -> tuple[float, np.ndarray, float]:
        """Hotspot isolation (§3.1): ordinary writes dispatch through their
        own queue, gated only by the *ordinary* stream's most loaded node;
        hotspot writes queue separately and consume whatever per-node
        headroom the ordinary stream leaves. A blocked hotspot therefore
        never stalls ordinary tenants. Returns (admitted, node_served,
        blended client wait) and records per-class waits in
        :attr:`isolation_delays`.
        """
        cfg = self.config
        capacity = cfg.node_capacity * cfg.tick_seconds
        hot_share = float(hot_shard_fraction.sum())
        normal_share = max(1.0 - hot_share, 0.0)
        normal_fraction = shard_fraction - hot_shard_fraction

        # Per-write node work of each substream (unit: one write of that class).
        normal_work = (
            self._node_work(normal_fraction / normal_share)
            if normal_share > 1e-9
            else np.zeros(cfg.num_nodes)
        )
        hot_work = (
            self._node_work(hot_shard_fraction / hot_share)
            if hot_share > 1e-9
            else np.zeros(cfg.num_nodes)
        )

        normal_dispatchable = self._client_backlog + offered * normal_share
        positive = normal_work[normal_work > 0]
        normal_cap = capacity / positive.max() if positive.size else 0.0
        admitted_normal = min(normal_dispatchable, normal_cap)
        self._client_backlog = min(
            normal_dispatchable - admitted_normal, rate * cfg.max_queue_seconds
        )

        headroom = capacity - normal_work * admitted_normal
        hot_dispatchable = self._hot_backlog + offered * hot_share
        hot_caps = [
            headroom[i] / hot_work[i]
            for i in range(cfg.num_nodes)
            if hot_work[i] > 0
        ]
        hot_cap = max(min(hot_caps), 0.0) if hot_caps else 0.0
        admitted_hot = min(hot_dispatchable, hot_cap)
        self._hot_backlog = min(
            hot_dispatchable - admitted_hot, rate * cfg.max_queue_seconds
        )

        ordinary_wait = min(
            self._client_backlog / max(admitted_normal / cfg.tick_seconds, 1e-9),
            cfg.max_queue_seconds,
        )
        hotspot_wait = min(
            self._hot_backlog / max(admitted_hot / cfg.tick_seconds, 1e-9),
            cfg.max_queue_seconds,
        )
        self.isolation_delays.append((now, ordinary_wait, hotspot_wait))

        admitted = admitted_normal + admitted_hot
        node_served = normal_work * admitted_normal + hot_work * admitted_hot
        blended_wait = (
            ordinary_wait * normal_share + hotspot_wait * hot_share
            if (normal_share + hot_share) > 0
            else 0.0
        )
        return admitted, node_served, blended_wait

    def _dispatch_blocking(
        self, dispatchable: float, work_per_write: np.ndarray, tick_seconds: float
    ) -> tuple[float, np.ndarray]:
        """Admit writes only as fast as the most loaded node can absorb its
        share — the client queue blocks on the hotspot (§3.1)."""
        positive = work_per_write[work_per_write > 0]
        if positive.size == 0:
            return 0.0, np.zeros_like(work_per_write)
        capacity = self.config.node_capacity * tick_seconds
        admit_cap = capacity / positive.max()
        admitted = min(dispatchable, admit_cap)
        node_served = work_per_write * admitted  # all ≤ capacity by design
        return admitted, node_served

    def _dispatch_unblocked(
        self, dispatchable: float, work_per_write: np.ndarray, tick_seconds: float
    ) -> tuple[float, np.ndarray]:
        """No back-pressure: everything dispatches; overloaded nodes queue
        locally (the ablation mode)."""
        admitted = dispatchable
        node_served = np.zeros_like(work_per_write)
        for node_id, node in enumerate(self._nodes):
            arriving = work_per_write[node_id] * admitted
            node_served[node_id] = node.serve(arriving, tick_seconds)
            cap_backlog = node.capacity * self.config.max_queue_seconds
            node.backlog = min(node.backlog, cap_backlog)
        return admitted, node_served

    # -- balancing -----------------------------------------------------------
    def _roll_skew(self, now: float) -> WindowStats:
        """Close the skew window and run hot-spot detection over it."""
        stats = self.skew.roll(now)
        self.skew_alerts.extend(
            detect_alerts(stats, hot_tenant_share=0.2, hot_shard_ratio=3.0)
        )
        return stats

    def _rebalance(self, now: float) -> None:
        """Run one balance round: monitor window → proposals → consensus."""
        self.monitor.roll_window(now)
        stats = self._roll_skew(now)
        proposals = self.balancer.rebalance()
        rules = self.policy.rules  # type: ignore[attr-defined]
        for proposal in proposals:
            try:
                outcome = self.consensus.propose(
                    RuleProposal("sim", proposal.tenant_id, proposal.offset), now
                )
            except ConsensusAborted:
                self.balancer.retract(proposal)
                continue
            rules.update(outcome.effective_time, proposal.offset, proposal.tenant_id)
            measurement = rule_measurement(stats, proposal.tenant_id)
            rules.annotate(
                outcome.effective_time,
                proposal.offset,
                proposal.tenant_id,
                reason=annotation_reason(
                    proposal.tenant_id, proposal.offset, measurement
                ),
                measurement=measurement or {},
            )
            self.rule_commits.append(
                (outcome.effective_time, proposal.tenant_id, proposal.offset)
            )

    # -- skew introspection ---------------------------------------------------
    def skew_report(self) -> dict:
        """JSON-ready summary of the run's skew windows and alerts."""
        return {
            "summary": summarize_windows(self.skew.windows),
            "windows": [w.to_dict() for w in self.skew.windows],
            "alerts": [a.to_dict() for a in self.skew_alerts],
            "rule_annotations": [
                {
                    "effective_time": a.effective_time,
                    "offset": a.offset,
                    "tenant": a.tenant,
                    "reason": a.reason,
                }
                for a in getattr(self.policy, "rules", None).annotations()
            ]
            if getattr(self.policy, "rules", None) is not None
            else [],
        }


def run_policy_comparison(
    policies: dict[str, RoutingPolicy],
    scenario_factory,
    config: SimulationConfig | None = None,
    workload: WorkloadConfig | None = None,
    replication: ReplicationCostModel | None = None,
) -> dict[str, SimulationReport]:
    """Run the same scenario under several policies; returns name → report.

    *scenario_factory* is called once per policy so each run gets a fresh
    scenario iterator (and identical workload seeds give identical arrivals).
    """
    reports = {}
    for name, policy in policies.items():
        simulation = WriteSimulation(
            policy,
            scenario_factory(),
            config=config,
            workload=workload,
            replication=replication,
        )
        reports[name] = simulation.run()
    return reports
