"""Analytic query-throughput model at full paper scale.

The Python engine cannot hold the paper's 40M-document corpus, but query
throughput in Figure 16 is governed by quantities we can compute exactly at
full scale:

* **fan-out** — how many subqueries a tenant query issues (1 for hashing,
  the static ``s`` for double hashing, ``L(k1)`` for dynamic);
* **per-query engine work** — every subquery pays a fixed dispatch +
  index-search cost, and the scan/fetch work is bounded by the template
  query's ``LIMIT 100`` regardless of tenant size (indexes + early
  termination), growing with tenant size only up to that bound.

Total work per query for a tenant with ``D`` documents and fan-out ``f``::

    work = f * per_subquery_overhead + search_per_doc * min(D, limit * fetch_factor)

and single-client QPS = 1 / work. This reproduces the paper's observations:

* small tenants — work is overhead-dominated, so double hashing's ``f = 8``
  costs ~60%+ throughput versus the single-subquery policies;
* large tenants — work is scan-dominated (the LIMIT bound), so dynamic
  secondary hashing's wide fan-out costs only a modest constant, and its
  throughput "does not drop significantly" versus hashing.

The constants were fitted once against the measured small-scale runs of
``benchmarks/test_fig16_query_throughput.py``; the shape conclusions are
insensitive to them across an order of magnitude, which the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.routing import RoutingPolicy
from repro.workload.zipf import zipf_weights


@dataclass(frozen=True)
class QueryCostModel:
    """Constants of the analytic work model (seconds)."""

    per_subquery_overhead: float = 200e-6  # dispatch + fixed index search
    search_per_doc: float = 1.2e-6  # posting/scan/fetch work per doc
    limit: int = 100  # LIMIT of the template query
    fetch_factor: int = 200  # docs touched per returned row, max

    def work(self, docs: float, fanout: int) -> float:
        """Total engine work for one query (seconds of engine time)."""
        if fanout < 1:
            raise ConfigurationError("fanout must be >= 1")
        scanned = min(docs, self.limit * self.fetch_factor)
        return self.per_subquery_overhead * fanout + self.search_per_doc * scanned

    def qps(self, docs: float, fanout: int) -> float:
        """Single-client queries/second (work model: QPS = 1 / work)."""
        return 1.0 / self.work(docs, fanout)

    def cluster_qps(self, docs: float, fanout: int, num_nodes: int = 8) -> float:
        """Aggregate QPS the cluster sustains for concurrent clients (the
        paper's setup: three client machines pushing the upper bound): every
        node contributes one engine-second per second, and each query burns
        ``work`` engine-seconds wherever its subqueries land."""
        if num_nodes < 1:
            raise ConfigurationError("num_nodes must be >= 1")
        return num_nodes / self.work(docs, fanout)


@dataclass(frozen=True)
class QueryScaleResult:
    """Per-rank query throughput for one policy at full scale."""

    policy: str
    ranks: np.ndarray
    qps: np.ndarray
    fanout: np.ndarray


def model_query_throughput(
    policy: RoutingPolicy,
    *,
    num_tenants: int = 100_000,
    total_docs: float = 40_000_000,
    theta: float = 1.0,
    ranks: list | None = None,
    cost: QueryCostModel | None = None,
) -> QueryScaleResult:
    """Model Figure 16 at the paper's scale for one routing policy.

    Tenant ``rank`` holds ``total_docs x zipf_weight(rank)`` documents; its
    fan-out comes from the *actual* policy object (for dynamic secondary
    hashing, commit rules first — e.g. via
    :func:`commit_paper_scale_rules`).
    """
    cost = cost or QueryCostModel()
    ranks = list(ranks) if ranks is not None else [1, 10, 100, 500, 1000, 2000]
    weights = zipf_weights(num_tenants, theta)
    qps = []
    fanouts = []
    for rank in ranks:
        docs = float(weights[rank - 1]) * total_docs
        fanout = len(policy.query_shards(rank))
        qps.append(cost.qps(docs, fanout))
        fanouts.append(fanout)
    return QueryScaleResult(
        policy=policy.name,
        ranks=np.array(ranks),
        qps=np.array(qps),
        fanout=np.array(fanouts),
    )


def commit_paper_scale_rules(
    policy,
    *,
    num_tenants: int = 100_000,
    theta: float = 1.0,
    num_shards: int = 512,
    target_share_per_shard: float = 0.004,
    effective_time: float = 0.0,
) -> int:
    """Populate a dynamic policy's rule list the way Algorithm 1 would at
    steady state for a Zipf(θ) tenant population. Returns rules committed."""
    from repro.balancer import compute_offset_size

    weights = zipf_weights(num_tenants, theta)
    committed = 0
    for rank, weight in enumerate(weights, start=1):
        offset = compute_offset_size(float(weight), num_shards, target_share_per_shard)
        if offset > 1:
            policy.rules.update(effective_time, offset, rank)
            committed += 1
        else:
            break  # weights are monotone decreasing: all further offsets are 1
    return committed
