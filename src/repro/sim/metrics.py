"""Metric collection for the write simulation.

Collects the exact series the paper plots: cluster throughput over time
(Figs 10a, 11a, 14), average write delay (Figs 10b, 11b), max write delay
(Fig 19), per-node and per-shard throughput with their standard deviations
(Figs 12, 13a–c), per-node CPU usage (Figs 13, 15b) and shard sizes
(Fig 13d).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

import numpy as np

from repro.telemetry.metrics import exponential_buckets, summarize

# Write delays land between sub-millisecond and tens of seconds; 48 buckets
# growing 1.35x from 1ms keep the interpolation error of the quantiles small.
DELAY_BUCKETS = exponential_buckets(1e-3, 1.35, 48)


@dataclass
class TickSample:
    """Per-tick aggregate measurements."""

    time: float
    offered: float  # writes generated this tick
    completed: float  # writes whose primary work finished this tick
    avg_delay: float  # mean completion delay of this tick's arrivals
    max_delay: float  # worst-node backlog delay
    node_throughput: np.ndarray
    node_cpu: np.ndarray


@dataclass
class MetricsCollector:
    """Accumulates tick samples and exposes the paper's summary statistics."""

    num_nodes: int
    num_shards: int
    samples: list = field(default_factory=list)
    shard_throughput_total: np.ndarray = None
    shard_sizes: np.ndarray = None

    def __post_init__(self) -> None:
        self.shard_throughput_total = np.zeros(self.num_shards)
        self.shard_sizes = np.zeros(self.num_shards)

    def record_tick(
        self,
        time: float,
        offered: float,
        completed: float,
        avg_delay: float,
        max_delay: float,
        node_throughput: np.ndarray,
        node_cpu: np.ndarray,
        shard_throughput: np.ndarray,
    ) -> None:
        self.samples.append(
            TickSample(
                time=time,
                offered=offered,
                completed=completed,
                avg_delay=avg_delay,
                max_delay=max_delay,
                node_throughput=node_throughput.copy(),
                node_cpu=node_cpu.copy(),
            )
        )
        self.shard_throughput_total += shard_throughput
        self.shard_sizes += shard_throughput

    # -- series ------------------------------------------------------------
    def throughput_series(self) -> list[tuple[float, float]]:
        return [(s.time, s.completed) for s in self.samples]

    def delay_series(self) -> list[tuple[float, float]]:
        return [(s.time, s.avg_delay) for s in self.samples]

    def max_delay_series(self) -> list[tuple[float, float]]:
        return [(s.time, s.max_delay) for s in self.samples]

    # -- summaries ------------------------------------------------------------
    def report(self, warmup: float = 0.0) -> "SimulationReport":
        """Summarize ticks after *warmup* seconds into a report."""
        steady = [s for s in self.samples if s.time >= warmup]
        if not steady:
            steady = self.samples
        duration = max(len(steady), 1)
        throughput = sum(s.completed for s in steady) / duration
        offered = sum(s.offered for s in steady) / duration
        delays = [s.avg_delay for s in steady]
        node_tp = np.mean([s.node_throughput for s in steady], axis=0)
        node_cpu = np.mean([s.node_cpu for s in steady], axis=0)
        ticks_counted = max(len(self.samples), 1)
        shard_tp = self.shard_throughput_total / ticks_counted
        quantiles = summarize(delays, buckets=DELAY_BUCKETS)
        return SimulationReport(
            offered_rate=offered,
            throughput=throughput,
            avg_delay=float(statistics.fmean(delays)) if delays else 0.0,
            max_delay=max((s.max_delay for s in steady), default=0.0),
            node_throughput=node_tp,
            node_cpu=node_cpu,
            shard_throughput=shard_tp,
            shard_sizes=self.shard_sizes.copy(),
            delay_p50=quantiles["p50"],
            delay_p95=quantiles["p95"],
            delay_p99=quantiles["p99"],
        )


@dataclass(frozen=True)
class SimulationReport:
    """Steady-state summary of one simulation run.

    All the paper's write-side metrics in one place; benchmark harnesses
    print rows straight from these fields.
    """

    offered_rate: float
    throughput: float
    avg_delay: float
    max_delay: float
    node_throughput: np.ndarray
    node_cpu: np.ndarray
    shard_throughput: np.ndarray
    shard_sizes: np.ndarray
    # Per-tick write-delay quantiles over the steady window, computed with
    # the same bucketed-histogram math as repro.telemetry histograms.
    delay_p50: float = 0.0
    delay_p95: float = 0.0
    delay_p99: float = 0.0

    @property
    def node_throughput_std(self) -> float:
        """Stddev of per-node throughput (Figure 12a)."""
        return float(np.std(self.node_throughput))

    @property
    def shard_throughput_std(self) -> float:
        """Stddev of per-shard throughput (Figure 12b)."""
        return float(np.std(self.shard_throughput))

    @property
    def avg_cpu(self) -> float:
        """Mean CPU utilization across nodes (Figure 15b)."""
        return float(np.mean(self.node_cpu))

    @property
    def shard_size_ratio(self) -> float:
        """Largest/smallest non-empty shard size (Figure 13d's 100x vs 16x
        vs 13x comparison)."""
        nonzero = self.shard_sizes[self.shard_sizes > 0]
        if nonzero.size == 0:
            return 1.0
        return float(nonzero.max() / nonzero.min())

    def normalized_shard_sizes(self) -> np.ndarray:
        """Shard sizes sorted descending, normalized to the smallest
        non-empty shard (the Figure 13d series)."""
        nonzero = np.sort(self.shard_sizes[self.shard_sizes > 0])[::-1]
        if nonzero.size == 0:
            return nonzero
        return nonzero / nonzero.min()
