"""Per-write micro-simulation.

The fluid-flow model in :mod:`repro.sim.simulator` is what makes the
paper-scale experiments tractable; this module is its *validator*. It
simulates every write individually — arrival at the client queue, blocking
dispatch, FIFO service at the primary node — with no fluid approximations
(the queueing recurrences advance per write, in arrival order). At small
scale the two models must agree on throughput and on who-beats-whom, which
``tests/test_microsim.py`` checks.

Modelled per write:

* arrival at ``t = i / rate``;
* head-of-line client dispatch: at most one write leaves the client queue
  per ``1 / admit_rate`` (the blocking dispatcher's behaviour), where the
  admit rate adapts to the observed per-node load exactly as the fluid
  model's cap does;
* FIFO service at the primary node (service time = primary cost / node
  capacity) and, in parallel, replica work occupying the replica's node.

Deliberately NOT modelled (same as the fluid model): refresh/merge CPU,
query interference.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.routing import RoutingPolicy
from repro.sim.models import ReplicationCostModel, SimulationConfig
from repro.workload.generator import TransactionLogGenerator, WorkloadConfig


@dataclass(frozen=True)
class MicroReport:
    """Results of one micro-simulation run."""

    offered: int
    completed: int
    duration: float
    avg_delay: float
    node_busy: np.ndarray

    @property
    def throughput(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    @property
    def node_utilization(self) -> np.ndarray:
        return self.node_busy / max(self.duration, 1e-9)


class MicroWriteSimulation:
    """Event-driven per-write simulation of one routing policy."""

    def __init__(
        self,
        policy: RoutingPolicy,
        rate: float,
        duration: float,
        config: SimulationConfig | None = None,
        workload: WorkloadConfig | None = None,
        replication: ReplicationCostModel | None = None,
    ) -> None:
        self.config = config or SimulationConfig()
        if policy.num_shards != self.config.num_shards:
            raise SimulationError("policy shard count mismatch")
        if rate <= 0 or duration <= 0:
            raise SimulationError("rate and duration must be positive")
        self.policy = policy
        self.rate = rate
        self.duration = duration
        self.replication = replication or ReplicationCostModel.logical()
        self.generator = TransactionLogGenerator(
            workload or WorkloadConfig(seed=self.config.seed)
        )
        self._rng = random.Random(self.config.seed + 13)
        shards = np.arange(self.config.num_shards)
        self._primary_node = shards % self.config.num_nodes
        self._replica_node = (shards + 1) % self.config.num_nodes

    def run(self) -> MicroReport:
        cfg = self.config
        total = int(self.rate * self.duration)
        primary_service = self.replication.primary_write_cost / cfg.node_capacity
        replica_service = self.replication.replica_write_cost / cfg.node_capacity

        # Pre-route all writes (the event loop then only does queueing).
        arrivals = np.arange(total) / self.rate
        primary_of = np.empty(total, dtype=np.int64)
        replica_of = np.empty(total, dtype=np.int64)
        for i in range(total):
            tenant = self.generator.tenants.sample()
            shard = self.policy.route_write(
                tenant, self._rng.getrandbits(48), created_time=float(arrivals[i])
            )
            primary_of[i] = self._primary_node[shard]
            replica_of[i] = self._replica_node[shard]

        # Event loop: each node is a FIFO whose next-free time advances as
        # writes are assigned; the client dispatches in arrival order but
        # may not dispatch a write before its arrival time, and holds the
        # queue whenever the destination node is backlogged beyond the
        # blocking horizon (head-of-line blocking).
        node_free = np.zeros(cfg.num_nodes)
        node_busy = np.zeros(cfg.num_nodes)
        horizon = self.duration  # writes completing after this don't count
        blocking_backlog = 2.0  # client blocks when a node is >2s behind
        completed = 0
        delays = []
        client_ready = 0.0
        for i in range(total):
            dispatch_at = max(float(arrivals[i]), client_ready)
            primary = int(primary_of[i])
            replica = int(replica_of[i])
            # Head-of-line blocking: wait until the destination node's
            # backlog drops under the blocking horizon.
            start = max(dispatch_at, node_free[primary] - blocking_backlog)
            begin_service = max(start, node_free[primary])
            finish = begin_service + primary_service
            # Busy time only counts inside the measurement horizon, so the
            # utilization metric stays in [0, 1] even with a deep backlog.
            node_busy[primary] += max(
                0.0, min(finish, horizon) - min(begin_service, horizon)
            )
            node_free[primary] = finish
            # Replica work proceeds in parallel on its own node.
            replica_begin = max(start, node_free[replica])
            replica_finish = replica_begin + replica_service
            node_free[replica] = replica_finish
            node_busy[replica] += max(
                0.0, min(replica_finish, horizon) - min(replica_begin, horizon)
            )
            client_ready = start  # next write cannot leave earlier
            if finish <= horizon:
                completed += 1
                delays.append(finish - float(arrivals[i]))

        return MicroReport(
            offered=total,
            completed=completed,
            duration=self.duration,
            avg_delay=float(np.mean(delays)) if delays else 0.0,
            node_busy=node_busy,
        )
