"""Simulation parameters and cost models.

The cost model captures the two write-path costs the paper measures:

* every write costs one service unit on its primary's node;
* the replica node spends ``replica_write_cost`` units per write — 1.0 under
  logical replication (the replica re-executes indexing), and a small
  fraction under physical replication (it only appends the write to its
  translog and later copies sealed segment bytes, §5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ReplicationCostModel:
    """Per-write CPU cost split between primary and replica nodes.

    Attributes:
        primary_write_cost: service units a primary spends per write.
        replica_write_cost: service units the replica's node spends per
            write. Logical replication re-executes the write (≈1.0);
            physical replication only syncs the translog and copies segment
            bytes (the paper's measurements imply roughly a quarter of the
            indexing cost).
    """

    primary_write_cost: float = 1.0
    replica_write_cost: float = 1.0

    def __post_init__(self) -> None:
        if self.primary_write_cost <= 0 or self.replica_write_cost < 0:
            raise ConfigurationError("invalid replication costs")

    @staticmethod
    def logical() -> "ReplicationCostModel":
        """Elasticsearch's logical replication: replicas re-execute writes."""
        return ReplicationCostModel(primary_write_cost=1.0, replica_write_cost=1.0)

    @staticmethod
    def physical() -> "ReplicationCostModel":
        """ESDB's physical replication: replicas receive segment files."""
        return ReplicationCostModel(primary_write_cost=1.0, replica_write_cost=0.25)


@dataclass(frozen=True)
class SimulationConfig:
    """Write-simulation parameters (defaults = the paper's testbed scale).

    Attributes:
        num_nodes: worker nodes (paper: 8).
        num_shards: shards (paper: 512).
        node_capacity: service units per node per second. With logical
            replication each write costs 2 units total, so 8 nodes at 42K
            units/s put the balanced-policy ceiling at 168K TPS — just above
            the paper's 160K operating point (Fig 11), with the rate sweep
            of Fig 10 crossing it.
        base_write_latency: fixed per-write completion latency added on top
            of queueing delay (refresh interval + network; the paper's
            balanced-policy delays bottom out around 0.2 s).
        sample_per_tick: how many representative writes are routed per tick;
            arrival mass is scaled from the sample (fluid-flow approximation).
        tick_seconds: simulation step.
        balance_window: monitor reporting period for the dynamic policy.
        consensus_interval: the effective-time lag T of rule commits.
        max_queue_seconds: drop the run into a hard backlog cap so saturated
            scenarios don't accumulate unbounded state.
        seed: RNG seed.
    """

    num_nodes: int = 8
    num_shards: int = 512
    node_capacity: float = 42_000.0
    base_write_latency: float = 0.2
    sample_per_tick: int = 2_000
    tick_seconds: float = 1.0
    balance_window: float = 10.0
    consensus_interval: float = 5.0
    max_queue_seconds: float = 600.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_nodes < 1 or self.num_shards < 1:
            raise ConfigurationError("need at least one node and one shard")
        if self.node_capacity <= 0:
            raise ConfigurationError("node_capacity must be positive")
        if self.sample_per_tick < 1:
            raise ConfigurationError("sample_per_tick must be >= 1")
        if self.tick_seconds <= 0:
            raise ConfigurationError("tick_seconds must be positive")

    @property
    def cluster_capacity(self) -> float:
        """Total service units/second across the cluster."""
        return self.num_nodes * self.node_capacity
