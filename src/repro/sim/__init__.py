"""Cluster performance simulator.

The paper's write-side results (Figures 10–15, 19) are queueing phenomena:
a routing policy concentrates or spreads arrival mass over nodes with finite
service capacity, and throughput/delay follow. This package implements a
fluid-flow simulation over the real routing/balancer/consensus code:

* every tick, the workload scenario produces an arrival rate; a seeded
  sample of writes is routed through the *actual* policy objects to obtain
  per-shard arrival mass;
* each node serves work (primary writes + replica work, weighted by the
  replication cost model) up to its capacity; excess queues;
* completed work, backlog-induced delay, per-node/per-shard distribution and
  CPU usage are recorded as time series;
* the load balancer + consensus layer run in-loop for the dynamic policy, so
  rule commits take effect with the real effective-time lag.
"""

from repro.sim.metrics import MetricsCollector, SimulationReport
from repro.sim.microsim import MicroReport, MicroWriteSimulation
from repro.sim.models import ReplicationCostModel, SimulationConfig
from repro.sim.querymodel import (
    QueryCostModel,
    QueryScaleResult,
    commit_paper_scale_rules,
    model_query_throughput,
)
from repro.sim.simulator import WriteSimulation, run_policy_comparison

__all__ = [
    "SimulationConfig",
    "ReplicationCostModel",
    "MetricsCollector",
    "SimulationReport",
    "WriteSimulation",
    "MicroWriteSimulation",
    "MicroReport",
    "run_policy_comparison",
    "QueryCostModel",
    "QueryScaleResult",
    "model_query_throughput",
    "commit_paper_scale_rules",
]
