"""The concurrent execution core (``EsdbConfig.exec``).

* :class:`ExecConfig` — backend selection and pool/coalescing knobs.
  Serial (the default) builds no executor and keeps every path
  byte-identical to the single-threaded instance.
* :class:`ShardExecutor` — deterministic fan-out onto a worker pool:
  one scheduling shape (:meth:`~ShardExecutor.map_ordered`, input-order
  gather) shared by bulk writes, query scatter-gather and shared scans.
* :class:`BulkResult` / :class:`BulkItemResult` — per-document outcomes
  of :meth:`ESDB.bulk_write`.
* :func:`execute_batch` — SharedDB-style query coalescing (exact
  duplicates and same-column scan families run one scan, not N).
"""

from repro.exec.bulk import BulkItemResult, BulkResult
from repro.exec.config import BACKENDS, ExecConfig
from repro.exec.executor import ShardExecutor
from repro.exec.shared import execute_batch

__all__ = [
    "BACKENDS",
    "BulkItemResult",
    "BulkResult",
    "ExecConfig",
    "ShardExecutor",
    "execute_batch",
]
