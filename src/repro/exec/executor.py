"""The shard executor: deterministic fan-out onto a worker pool.

:class:`ShardExecutor` is the one concurrency primitive every parallel
path in the facade shares. It owns a ``concurrent.futures`` thread pool
(``threads`` backend) and exposes exactly one scheduling shape —
:meth:`map_ordered`: run one task per key, gather results in **input
order** regardless of completion order. That single invariant is what
makes the thread backend's outputs equal the serial backend's: bulk
batches apply per shard (each shard's documents stay in submission
order on one worker), and query scatter-gather merges shard results in
shard-id order, never arrival order.

Telemetry lands in the shared registry: ``exec_tasks_total`` (by
phase), ``exec_worker_tasks_total`` (by worker thread), an
``exec_task_seconds`` histogram and an ``exec_queue_depth`` gauge —
the data behind ``cat_exec`` and the ``exec.*`` derived series.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

from repro.exec.config import ExecConfig
from repro.telemetry.context import activate_context, current_context


class ShardExecutor:
    """Run per-shard tasks on a worker pool with input-order gather."""

    def __init__(self, config: ExecConfig, metrics=None) -> None:
        self.config = config
        self.backend = config.backend
        self.workers = config.pool_size() if config.enabled else 0
        self._metrics = metrics
        self._pool: ThreadPoolExecutor | None = None
        self._pending = 0
        self._pending_lock = threading.Lock()
        if config.enabled:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="esdb-exec"
            )
        self.tasks_run = 0

    # -- scheduling --------------------------------------------------------
    def map_ordered(
        self,
        fn: Callable[[Any], Any],
        keys: Sequence[Any],
        phase: str = "task",
    ) -> list:
        """Run ``fn(key)`` for every key; return results in input order.

        On the serial backend this is a plain loop. On the thread backend
        every key is submitted to the pool up front and results are
        gathered by waiting on the futures *in input order* — completion
        order never leaks into the result list. Exceptions propagate to
        the caller exactly as in the serial loop (the first failing key in
        input order raises; remaining tasks still run to completion on
        their workers but their results are discarded).
        """
        if self._pool is None or len(keys) <= 1:
            return [self._run_task(fn, key, phase, pooled=False) for key in keys]
        # The submitting thread's trace context rides along to every
        # worker: each task re-activates it for the duration of fn(key),
        # so per-shard work knows which request it belongs to.
        context = current_context()
        self._note_pending(len(keys))
        futures = [
            self._pool.submit(
                self._run_task, fn, key, phase, pooled=True, context=context
            )
            for key in keys
        ]
        results = []
        error: BaseException | None = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # gather everything, raise first
                if error is None:
                    error = exc
        if error is not None:
            raise error
        return results

    def _run_task(self, fn, key, phase: str, pooled: bool = False, context=None):
        # ``pooled`` is decided at submission time, not by probing
        # self._pool here: a single-key call on a live pool runs inline
        # on the caller's thread and must neither touch the queue gauge
        # (it was never enqueued) nor count as a worker task.
        start = time.perf_counter()
        try:
            if context is not None:
                with activate_context(context):
                    return fn(key)
            return fn(key)
        finally:
            elapsed = time.perf_counter() - start
            self.tasks_run += 1
            if pooled:
                self._note_pending(-1)
            metrics = self._metrics
            if metrics is not None:
                metrics.counter(
                    "exec_tasks_total", backend=self.backend, phase=phase
                ).inc()
                metrics.histogram("exec_task_seconds").observe(elapsed)
                if pooled:
                    metrics.counter(
                        "exec_worker_tasks_total",
                        worker=threading.current_thread().name,
                    ).inc()

    def _note_pending(self, delta: int) -> None:
        with self._pending_lock:
            self._pending += delta
            depth = self._pending
        if self._metrics is not None:
            self._metrics.gauge("exec_queue_depth").set(depth)

    @property
    def queue_depth(self) -> int:
        """Tasks submitted to the pool and not yet finished."""
        with self._pending_lock:
            return self._pending

    # -- lifecycle ---------------------------------------------------------
    def shutdown(self) -> None:
        """Stop the pool (idempotent). Serial executors are a no-op."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
