"""Result types of the batched bulk-write path (:meth:`ESDB.bulk_write`).

Mirrors Elasticsearch's ``_bulk`` response shape: the call never throws
away per-document information — every submitted source gets exactly one
:class:`BulkItemResult` in submission order, successful or not, so a
client can retry precisely the failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class BulkItemResult:
    """Outcome of one document inside a bulk write.

    Attributes:
        position: the document's index in the submitted sequence.
        doc_id: the document id (None if the source was rejected before
            its id field could be read).
        shard_id: the routed shard (None if rejected before routing).
        ok: whether the document was applied to its shard engine.
        error: the exception that rejected it (None when ``ok``).
    """

    position: int
    doc_id: object = None
    shard_id: int | None = None
    ok: bool = True
    error: BaseException | None = None


@dataclass
class BulkResult:
    """Outcome of one :meth:`ESDB.bulk_write` call."""

    items: list[BulkItemResult] = field(default_factory=list)
    #: Coordinator-side elapsed seconds for the whole bulk.
    took: float = 0.0

    @property
    def ok(self) -> bool:
        return all(item.ok for item in self.items)

    @property
    def applied(self) -> int:
        """Documents that reached a shard engine."""
        return sum(1 for item in self.items if item.ok)

    @property
    def errors(self) -> list[BulkItemResult]:
        """The failed items, in submission order."""
        return [item for item in self.items if not item.ok]

    def raise_first(self) -> None:
        """Re-raise the first (submission-order) error, if any."""
        for item in self.items:
            if not item.ok:
                raise item.error

    def shard_counts(self) -> dict[int, int]:
        """Applied documents per shard (diagnostics / tests)."""
        counts: dict[int, int] = {}
        for item in self.items:
            if item.ok and item.shard_id is not None:
                counts[item.shard_id] = counts.get(item.shard_id, 0) + 1
        return counts
