"""Configuration of the concurrent execution core (``EsdbConfig.exec``).

One frozen dataclass selects the execution backend and tunes the two
optional concurrency mechanisms of :mod:`repro.exec`: per-shard worker
pools (bulk-write application and query scatter-gather dispatched to a
thread pool) and shared execution (SharedDB-style query coalescing — many
same-shaped statements answered with one scan).

``ExecConfig()`` is the **serial** backend by default — the facade then
builds no executor object and every write/query path is byte-identical to
today's single-threaded instance, including chaos fingerprints.
``ExecConfig.threads()`` is the worker-pool preset the concurrency
benchmarks and the threaded chaos smoke run with.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

#: Recognized execution backends.
BACKENDS = ("serial", "threads")


@dataclass(frozen=True)
class ExecConfig:
    """Tuning knobs for the execution layer.

    Attributes:
        backend: ``"serial"`` (default) keeps today's single-threaded code
            paths — the facade builds no executor and no pool, so default
            behavior (including chaos fingerprints) is byte-identical.
            ``"threads"`` builds a :class:`~repro.exec.ShardExecutor` on a
            ``concurrent.futures`` thread pool: per-shard bulk batches and
            per-shard query subqueries run on workers, with deterministic
            scatter-gather (results are merged in shard-id order, never
            completion order).
        workers: pool size for the ``threads`` backend. ``None`` sizes the
            pool to ``min(8, os.cpu_count())``.
        coalesce_queries: enable the shared-execution stage
            (:meth:`ESDB.execute_batch`): concurrently submitted statements
            are grouped by fingerprint (exact duplicates run once) and by
            scan family (same-column filters share one doc-values pass per
            shard). Off by default; independent of the backend choice —
            coalescing amortizes scans, not threads.
        max_group: largest number of statements fused into one shared scan
            group; statements beyond it start a new group.
    """

    backend: str = "serial"
    workers: int | None = None
    coalesce_queries: bool = False
    max_group: int = 64

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown exec backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError("workers must be >= 1 (or None for auto)")
        if self.max_group < 2:
            raise ConfigurationError("max_group must be >= 2")

    @property
    def enabled(self) -> bool:
        """Whether this config builds an executor object at all."""
        return self.backend != "serial"

    def pool_size(self) -> int:
        """The resolved worker count for the ``threads`` backend."""
        if self.workers is not None:
            return self.workers
        return min(8, os.cpu_count() or 1)

    @classmethod
    def threads(cls, workers: int | None = None, **overrides) -> "ExecConfig":
        """The worker-pool preset used by benchmarks and threaded chaos."""
        return replace(
            cls(backend="threads", workers=workers, coalesce_queries=True),
            **overrides,
        )
