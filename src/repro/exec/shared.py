"""Shared execution: answer N same-shaped queries with one scan.

The SharedDB idea ("Killing One Thousand Queries With One Stone"): when
many concurrently submitted statements are identical or filter the same
scan column, the coordinator should not fan each one out independently —
it runs the work once and fans the *results* back out.

:func:`execute_batch` implements the two coalescing levels behind
:meth:`ESDB.execute_batch`:

* **fingerprint groups** — exact duplicates (by
  :func:`~repro.cache.sql_fingerprint`) execute once; every duplicate
  position receives the same result.
* **scan families** — distinct statements whose WHERE clause is a single
  comparison on one sequential-scan column share one
  :meth:`~repro.storage.engine.ShardEngine.multi_full_scan` pass per
  shard: the column is traversed once, every member's predicate is
  evaluated in that pass, and each member aggregates its own posting
  lists.

Everything else falls through to the ordinary per-statement pipeline, so
a batch of unrelated queries behaves exactly like a loop over
``execute_sql``. Savings land in ``exec_shared_groups_total`` /
``exec_shared_saved_total``.
"""

from __future__ import annotations

from repro.cache import sql_fingerprint
from repro.errors import QueryError
from repro.query import ResultAggregator, parse_sql
from repro.query.ast import ComparisonPredicate, SelectStatement
from repro.query.executor import _scan_predicate


def execute_batch(db, sqls: list) -> list:
    """Execute *sqls* with coalescing; results align with input positions.

    Falls back to a plain loop when coalescing is off or the batch is
    trivial — result equality with independent execution holds either
    way (that is the contract the tests pin)."""
    sqls = list(sqls)
    if not db.config.exec.coalesce_queries or len(sqls) <= 1:
        return [db.execute_sql(sql) for sql in sqls]

    metrics = db.telemetry.metrics
    groups: dict[str, list[int]] = {}
    order: list[str] = []
    rep_sql: dict[str, str] = {}
    for pos, sql in enumerate(sqls):
        fingerprint = sql_fingerprint(sql)
        if fingerprint not in groups:
            groups[fingerprint] = []
            order.append(fingerprint)
            rep_sql[fingerprint] = sql
        groups[fingerprint].append(pos)

    # Family detection over the distinct statements only: a parse failure
    # here is not an error — the statement simply executes independently
    # and surfaces its error through the normal pipeline.
    statements: dict[str, SelectStatement | None] = {}
    families: dict[str, list[str]] = {}
    for fingerprint in order:
        statement = _try_translate(db, rep_sql[fingerprint])
        statements[fingerprint] = statement
        column = _family_column(db, statement)
        if column is not None:
            families.setdefault(column, []).append(fingerprint)

    results: list = [None] * len(sqls)
    shared: set[str] = set()
    max_group = db.config.exec.max_group
    for column, members in sorted(families.items()):
        for start in range(0, len(members), max_group):
            chunk = members[start:start + max_group]
            if len(chunk) < 2:
                continue
            chunk_results = _execute_family(
                db, column, [statements[fp] for fp in chunk]
            )
            for fingerprint, result in zip(chunk, chunk_results):
                for pos in groups[fingerprint]:
                    results[pos] = result
                shared.add(fingerprint)
            metrics.counter("exec_shared_groups_total", kind="family").inc()
            metrics.counter("exec_shared_saved_total").inc(len(chunk) - 1)

    for fingerprint in order:
        if fingerprint not in shared:
            result = db.execute_sql(rep_sql[fingerprint])
            for pos in groups[fingerprint]:
                results[pos] = result
        duplicates = len(groups[fingerprint]) - 1
        if duplicates:
            metrics.counter("exec_shared_groups_total", kind="duplicate").inc()
            metrics.counter("exec_shared_saved_total").inc(duplicates)
    return results


def _try_translate(db, sql: str) -> SelectStatement | None:
    try:
        return db.xdriver.translate(parse_sql(sql)).statement
    except QueryError:
        return None


def _family_column(db, statement: SelectStatement | None) -> str | None:
    """The scan column a statement can share a pass on, or None.

    Membership is deliberately narrow — exactly one comparison predicate
    on a sequential-scan column, full shard fan-out, no per-shard top-k —
    so the shared pass is provably equivalent to the member's own
    :class:`~repro.query.plan.FullScan` plan."""
    if statement is None:
        return None
    where = statement.where
    if not isinstance(where, ComparisonPredicate):
        return None
    if where.column == db.config.schema.tenant_field:
        return None
    if where.column not in db.config.scan_columns:
        return None
    if statement.limit is not None or statement.order_by is not None:
        return None
    return where.column


def _execute_family(db, column: str, members: list) -> list:
    """One shared scan for every member statement; returns their results
    in member order. Each member still passes admission and is charged
    for what its own filter matched."""
    governor = db.governor
    if governor is not None:
        for statement in members:
            governor.admit_query(db._statement_tenant(statement), db.now)
    predicates = []
    for statement in members:
        base = _scan_predicate(statement.where.op, statement.where.value)
        predicates.append(lambda v, base=base: v is not None and base(v))
    shard_ids = list(range(db.cluster.num_shards))

    def scan_shard(shard_id: int) -> list:
        engine = db.engines[shard_id]
        entries = []
        for rows in engine.multi_full_scan(column, predicates):
            entries.append(([doc.source for doc in engine.fetch(rows)], len(rows)))
        return entries

    def run_fanout() -> list:
        if db.executor is not None:
            return db.executor.map_ordered(scan_shard, shard_ids, phase="shared")
        return [scan_shard(shard_id) for shard_id in shard_ids]

    ctx = db._new_trace("execute_batch")
    if ctx is not None:
        # The shared pass gets its own trace; every member statement gets
        # its own context, attached as span links — SharedDB's attribution
        # fix: the scan's cost is creditable to all N statements, not just
        # whichever one happened to trigger the group.
        member_contexts = [db._new_trace("query") for _ in members]
        with db.telemetry.tracer.trace(
            f"batch.scan[{column}]",
            ctx,
            sampler=db.trace_sampler,
            members=len(members),
        ) as span:
            for member_ctx in member_contexts:
                span.add_link(member_ctx.trace_id)
            per_shard = run_fanout()
    else:
        per_shard = run_fanout()

    metrics = db.telemetry.metrics
    results = []
    for i, statement in enumerate(members):
        aggregator = ResultAggregator(
            columns=statement.columns,
            order_by=statement.order_by,
            limit=statement.limit,
            group_by=statement.group_by,
            having=statement.having,
        )
        result = aggregator.aggregate_shards(
            [per_shard[shard_id][i] for shard_id in shard_ids]
        )
        metrics.counter("esdb_queries_total").inc()
        if governor is not None:
            governor.charge_query(
                db._statement_tenant(statement), db.now, scanned=result.total_hits
            )
        results.append(result)
    metrics.counter("esdb_subqueries_total").inc(len(shard_ids))
    return results
