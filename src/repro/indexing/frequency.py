"""Frequency-based sub-attribute index selection.

The "attributes" column concatenates ~1500 customized sub-attributes, whose
read/write frequencies are themselves heavily skewed (the paper reports the
top 30 appearing in ~50% of workloads). Indexing all of them is prohibitive;
ESDB indexes only the most frequently *queried* ones, trading a small
storage overhead for a large latency win on the common case.

This module tracks per-sub-attribute usage frequencies and selects the
top-K set, which is then handed to :class:`~repro.storage.engine.EngineConfig`
as ``indexed_subattributes``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.slo.sketch import rank_top_k


@dataclass
class FrequencyTracker:
    """Counts how often each sub-attribute appears in writes and queries.

    Selection weights query frequency over write frequency (an index only
    pays off when queried), with writes as a tiebreaker.
    """

    write_counts: Counter = field(default_factory=Counter)
    query_counts: Counter = field(default_factory=Counter)

    @staticmethod
    def _names(subattribute_names: Iterable[str]) -> Iterable[str]:
        # Accept the parse_attributes() dict directly: its *keys* are the
        # names (Counter.update would otherwise treat values as counts).
        if isinstance(subattribute_names, Mapping):
            return subattribute_names.keys()
        return subattribute_names

    def record_write(self, subattribute_names: Iterable[str]) -> None:
        """Record one written document's sub-attribute names."""
        self.write_counts.update(self._names(subattribute_names))

    def record_query(self, subattribute_names: Iterable[str]) -> None:
        """Record the sub-attributes a query filtered on."""
        self.query_counts.update(self._names(subattribute_names))

    def top_k(self, k: int) -> frozenset:
        """Return the *k* most valuable sub-attributes to index.

        Ranking runs through the shared :func:`repro.slo.rank_top_k` core:
        query count desc, write count desc, then *name ascending* — fully
        deterministic even when counts tie (a bare ``reverse=True`` sort
        would flip the name tiebreak to descending)."""
        ranked = rank_top_k(
            {
                name: (self.query_counts[name], self.write_counts[name])
                for name in set(self.query_counts) | set(self.write_counts)
            },
            k,
        )
        return frozenset(name for name, _ in ranked)

    def coverage(self, selected: frozenset) -> float:
        """Fraction of query references answered by the selected set —
        the paper's "top 30 appear in ~50% of workloads" statistic."""
        total = sum(self.query_counts.values())
        if total == 0:
            return 0.0
        covered = sum(self.query_counts[name] for name in selected)
        return covered / total


def select_indexed_subattributes(
    tracker: FrequencyTracker, k: int = 30, min_coverage: float = 0.0
) -> frozenset:
    """Select the top-*k* sub-attributes, growing *k* until *min_coverage*
    of query references are covered (bounded by the universe size)."""
    universe = set(tracker.query_counts) | set(tracker.write_counts)
    selected = tracker.top_k(k)
    while tracker.coverage(selected) < min_coverage and len(selected) < len(universe):
        k *= 2
        selected = tracker.top_k(k)
    return selected
