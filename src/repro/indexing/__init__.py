"""Frequency-based indexing of the "attributes" sub-attributes (§3.2, §6.3.3)."""

from repro.indexing.frequency import FrequencyTracker, select_indexed_subattributes

__all__ = ["FrequencyTracker", "select_indexed_subattributes"]
